package mtjit

import "fmt"

// This file implements structural well-formedness checks over installed
// traces and over the engine's bookkeeping. The differential-testing
// oracle (internal/difftest) runs them after every JIT execution; they
// are cheap enough to keep on in any test that owns an Engine.

// ValidateTrace checks that an installed trace is well-formed:
//
//   - the entry maps interpreter slots onto distinct in-range registers
//     (loop traces have exactly one entry frame),
//   - every op operand names a constant in range, an entry register, or
//     the result of an earlier op (SSA: results are assigned once),
//   - every guard carries a resume snapshot and a nonzero GuardID, and
//     its resume data only references defined registers, constants, or
//     virtuals described in the same snapshot,
//   - call ops carry their callee (Fn/Thunk, or Target for
//     call_assembler),
//   - the trace ends in exactly one terminator (jump / finish /
//     call_assembler) and jump argument counts match the target entry,
//   - per-op metadata (OpPCs, OpExecs) covers every op.
func ValidateTrace(t *Trace) error {
	if t == nil {
		return fmt.Errorf("nil trace")
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace %d (bridge=%v): %s", t.ID, t.Bridge, fmt.Sprintf(format, args...))
	}
	if t.Entry == nil || len(t.Entry.Frames) == 0 {
		return fail("missing entry state")
	}
	if !t.Bridge && len(t.Entry.Frames) != 1 {
		return fail("loop trace entry has %d frames, want 1", len(t.Entry.Frames))
	}
	if t.NumRegs < 1 {
		return fail("NumRegs = %d", t.NumRegs)
	}
	if len(t.OpPCs) != len(t.Ops) {
		return fail("OpPCs covers %d of %d ops", len(t.OpPCs), len(t.Ops))
	}
	if len(t.OpExecs) != len(t.Ops) {
		return fail("OpExecs covers %d of %d ops", len(t.OpExecs), len(t.Ops))
	}

	defined := make(map[Ref]bool)
	for fi := range t.Entry.Frames {
		for si, r := range t.Entry.Frames[fi].Slots {
			if r <= 0 || int(r) >= t.NumRegs {
				return fail("entry frame %d slot %d maps to register %d (NumRegs %d)", fi, si, r, t.NumRegs)
			}
			if defined[r] {
				return fail("entry register %d assigned twice", r)
			}
			defined[r] = true
		}
	}

	// operandOK reports whether r may be read at this point. extra holds
	// virtual refs defined by the resume snapshot being checked (nil
	// outside resume data).
	operandOK := func(r Ref, extra map[Ref]bool) error {
		switch {
		case r == RefNone || r == RefUnused:
			return nil
		case r.IsConst():
			if i := r.ConstIndex(); i < 0 || i >= len(t.Consts) {
				return fmt.Errorf("constant ref %d out of range (table size %d)", r, len(t.Consts))
			}
			return nil
		case defined[r]:
			return nil
		case extra != nil && extra[r]:
			return nil
		default:
			return fmt.Errorf("register %d read before definition", r)
		}
	}

	checkResume := func(i int, op *Op) error {
		rs := op.Resume
		if len(rs.Frames) == 0 {
			return fail("op %d %s: resume state has no frames", i, op)
		}
		virt := make(map[Ref]bool, len(rs.Virtuals))
		for _, vd := range rs.Virtuals {
			if vd.Shape == nil {
				return fail("op %d %s: virtual %d has no shape", i, op, vd.Ref)
			}
			if vd.NumFields != len(vd.FieldRefs) {
				return fail("op %d %s: virtual %d has %d field refs, want %d", i, op, vd.Ref, len(vd.FieldRefs), vd.NumFields)
			}
			if vd.ArrayLen >= 0 && vd.ArrayLen != len(vd.ElemRefs) {
				return fail("op %d %s: virtual %d has %d elem refs, want %d", i, op, vd.Ref, len(vd.ElemRefs), vd.ArrayLen)
			}
			if vd.ArrayLen < 0 && len(vd.ElemRefs) != 0 {
				return fail("op %d %s: non-array virtual %d has elem refs", i, op, vd.Ref)
			}
			virt[vd.Ref] = true
		}
		for _, vd := range rs.Virtuals {
			for _, f := range vd.FieldRefs {
				if err := operandOK(f, virt); err != nil {
					return fail("op %d %s: virtual %d field: %v", i, op, vd.Ref, err)
				}
			}
			for _, el := range vd.ElemRefs {
				if err := operandOK(el, virt); err != nil {
					return fail("op %d %s: virtual %d elem: %v", i, op, vd.Ref, err)
				}
			}
		}
		for fi := range rs.Frames {
			for si, s := range rs.Frames[fi].Slots {
				if err := operandOK(s, virt); err != nil {
					return fail("op %d %s: resume frame %d slot %d: %v", i, op, fi, si, err)
				}
			}
		}
		return nil
	}

	if len(t.Ops) == 0 {
		return fail("empty op list")
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		for _, r := range [...]Ref{op.A, op.B, op.C} {
			if err := operandOK(r, nil); err != nil {
				return fail("op %d %s: %v", i, op, err)
			}
		}
		for ai, a := range op.Args {
			if err := operandOK(a, nil); err != nil {
				return fail("op %d %s: arg %d: %v", i, op, ai, err)
			}
		}

		switch {
		case op.Opc.IsGuard():
			if op.Resume == nil {
				return fail("op %d %s: guard without resume state", i, op)
			}
			if op.GuardID == 0 {
				return fail("op %d %s: guard without GuardID", i, op)
			}
		case op.Opc == OpCall || op.Opc == OpCallMayForce || op.Opc == OpCondCall:
			if op.Fn == nil || op.Thunk == nil {
				return fail("op %d %s: residual call without Fn/Thunk", i, op)
			}
		case op.Opc == OpCallAssembler:
			if op.Target == nil {
				return fail("op %d call_assembler without target", i)
			}
			if op.Resume == nil {
				return fail("op %d call_assembler without resume state", i)
			}
		}
		if op.Resume != nil {
			if err := checkResume(i, op); err != nil {
				return err
			}
		}

		terminator := op.Opc == OpJump || op.Opc == OpFinish || op.Opc == OpCallAssembler
		if terminator && i != len(t.Ops)-1 {
			return fail("op %d %s: terminator before end of trace", i, op)
		}
		if i == len(t.Ops)-1 && !terminator {
			return fail("last op %s is not jump/finish/call_assembler", op)
		}

		if op.Opc == OpJump {
			target := op.Target
			if target == nil {
				target = t
			}
			want := len(target.Entry.Frames[0].Slots)
			if len(op.Args) != want {
				return fail("jump passes %d args, target trace %d entry takes %d", len(op.Args), target.ID, want)
			}
		}

		if op.Res != RefNone {
			if op.Res <= 0 || int(op.Res) >= t.NumRegs {
				return fail("op %d %s: result register %d out of range (NumRegs %d)", i, op, op.Res, t.NumRegs)
			}
			if defined[op.Res] {
				return fail("op %d %s: register %d assigned twice", i, op, op.Res)
			}
			defined[op.Res] = true
		}
	}
	return nil
}

// Validate checks the engine's bookkeeping for internal consistency and
// validates every installed trace. It verifies that:
//
//   - LoopsCompiled + BridgesCompiled matches the installed trace count,
//   - the optimizer never reports removing more ops than were recorded,
//   - per-reason abort counters never exceed the abort total,
//   - every counted guard failure belongs to a guard of an installed
//     trace, and the per-guard counts sum to EngineStats.GuardFailures,
//   - the trace and bridge lookup tables only hold installed,
//     non-invalidated traces, and stats.Invalidated matches the number
//     of invalidated traces in the compile log.
func (e *Engine) Validate() error {
	st := e.stats
	if st.LoopsCompiled+st.BridgesCompiled != len(e.all) {
		return fmt.Errorf("stats count %d loops + %d bridges, %d traces installed",
			st.LoopsCompiled, st.BridgesCompiled, len(e.all))
	}
	if st.OpsRemoved < 0 || st.OpsRecorded < 0 || st.OpsRemoved > st.OpsRecorded {
		return fmt.Errorf("OpsRemoved %d > OpsRecorded %d", st.OpsRemoved, st.OpsRecorded)
	}
	if st.AbortsTooLong+st.AbortsLeftFrame > st.Aborts {
		return fmt.Errorf("abort reasons (%d too-long + %d left-frame) exceed %d aborts",
			st.AbortsTooLong, st.AbortsLeftFrame, st.Aborts)
	}

	loops, bridges, invalidated := 0, 0, 0
	for _, t := range e.all {
		if t.Invalidated {
			invalidated++
		}
	}
	if invalidated != st.Invalidated {
		return fmt.Errorf("%d traces marked invalidated, stats.Invalidated = %d", invalidated, st.Invalidated)
	}

	guardIDs := make(map[uint32]bool)
	for _, t := range e.all {
		if err := ValidateTrace(t); err != nil {
			return err
		}
		if t.Bridge {
			bridges++
		} else {
			loops++
		}
		for i := range t.Ops {
			if t.Ops[i].Opc.IsGuard() {
				guardIDs[t.Ops[i].GuardID] = true
			}
		}
	}
	if loops != st.LoopsCompiled || bridges != st.BridgesCompiled {
		return fmt.Errorf("installed %d loops / %d bridges, stats say %d / %d",
			loops, bridges, st.LoopsCompiled, st.BridgesCompiled)
	}

	var fails uint64
	for id, n := range e.guardFails {
		if n < 0 {
			return fmt.Errorf("guard %d has negative failure count %d", id, n)
		}
		if n > 0 && !guardIDs[id] {
			return fmt.Errorf("guard %d failed %d times but belongs to no installed trace", id, n)
		}
		fails += uint64(n)
	}
	if fails != st.GuardFailures {
		return fmt.Errorf("per-guard failure counts sum to %d, stats.GuardFailures = %d", fails, st.GuardFailures)
	}

	for key, t := range e.traces {
		if t.Bridge {
			return fmt.Errorf("loop table entry %v holds bridge trace %d", key, t.ID)
		}
		if t.Invalidated {
			return fmt.Errorf("loop table entry %v holds invalidated trace %d", key, t.ID)
		}
		if !installed(e.all, t) {
			return fmt.Errorf("loop table entry %v holds uninstalled trace %d", key, t.ID)
		}
	}
	for id, t := range e.bridges {
		if !t.Bridge {
			return fmt.Errorf("bridge table entry for guard %d holds loop trace %d", id, t.ID)
		}
		if t.Invalidated {
			return fmt.Errorf("bridge table entry for guard %d holds invalidated trace %d", id, t.ID)
		}
		if !installed(e.all, t) {
			return fmt.Errorf("bridge table entry for guard %d holds uninstalled trace %d", id, t.ID)
		}
	}
	for name, ts := range e.globalDeps {
		for _, t := range ts {
			if !installed(e.all, t) {
				return fmt.Errorf("global dep %q holds uninstalled trace %d", name, t.ID)
			}
		}
	}
	return e.validateBaseline()
}

// validateBaseline checks tier-1 bookkeeping: stats match the compile
// log, the dispatch table only holds valid code, promotion invalidated
// superseded code, and per-code counters sum to the engine totals.
func (e *Engine) validateBaseline() error {
	st := e.stats
	if st.BaselinesCompiled != len(e.allBaseline) {
		return fmt.Errorf("stats.BaselinesCompiled = %d, %d baseline codes installed",
			st.BaselinesCompiled, len(e.allBaseline))
	}
	invalidated := 0
	var enters, deopts uint64
	for _, bc := range e.allBaseline {
		if bc.Invalidated {
			invalidated++
		}
		enters += bc.EnterCount
		deopts += bc.DeoptCount
		if len(bc.Ops) == 0 {
			return fmt.Errorf("baseline code %d has no ops", bc.ID)
		}
		if bc.AsmLen <= 0 {
			return fmt.Errorf("baseline code %d has AsmLen %d", bc.ID, bc.AsmLen)
		}
		if !bc.Covers(bc.Key.PC) {
			return fmt.Errorf("baseline code %d region [%d,%d] does not cover its header pc %d",
				bc.ID, bc.Start, bc.End, bc.Key.PC)
		}
		for i := range bc.Ops {
			if bc.Ops[i].PC < bc.Start || bc.Ops[i].PC > bc.End {
				return fmt.Errorf("baseline code %d op %d at pc %d outside region [%d,%d]",
					bc.ID, i, bc.Ops[i].PC, bc.Start, bc.End)
			}
			if bc.Ops[i].AsmLen <= 0 {
				return fmt.Errorf("baseline code %d op %d has AsmLen %d", bc.ID, i, bc.Ops[i].AsmLen)
			}
		}
	}
	if invalidated != st.BaselineInvalidated {
		return fmt.Errorf("%d baseline codes marked invalidated, stats.BaselineInvalidated = %d",
			invalidated, st.BaselineInvalidated)
	}
	if enters != st.BaselineEnters {
		return fmt.Errorf("per-code enter counts sum to %d, stats.BaselineEnters = %d", enters, st.BaselineEnters)
	}
	if deopts != st.BaselineDeopts {
		return fmt.Errorf("per-code deopt counts sum to %d, stats.BaselineDeopts = %d", deopts, st.BaselineDeopts)
	}
	for key, bc := range e.baseline {
		if bc.Key != key {
			return fmt.Errorf("baseline table entry %v holds code %d keyed %v", key, bc.ID, bc.Key)
		}
		if bc.Invalidated {
			return fmt.Errorf("baseline table entry %v holds invalidated code %d", key, bc.ID)
		}
		if !baselineInstalled(e.allBaseline, bc) {
			return fmt.Errorf("baseline table entry %v holds uninstalled code %d", key, bc.ID)
		}
		if t := e.traces[key]; t != nil && !t.Invalidated {
			return fmt.Errorf("header %v has both live baseline code %d and loop trace %d (promotion must invalidate)",
				key, bc.ID, t.ID)
		}
	}
	for name, bcs := range e.baselineDeps {
		for _, bc := range bcs {
			if !baselineInstalled(e.allBaseline, bc) {
				return fmt.Errorf("baseline global dep %q holds uninstalled code %d", name, bc.ID)
			}
		}
	}
	return e.validateMethod()
}

// validateMethod checks tier-2 bookkeeping: stats match the compile
// log, the dispatch table only holds valid code, per-code counters sum
// to the engine totals, and the amalgamation invariant holds — a
// function with live method code has no live baseline fragments
// (method install must invalidate them), while coexisting loop traces
// are legal (a loop trace owns its header inside a method-compiled
// function).
func (e *Engine) validateMethod() error {
	st := e.stats
	if st.MethodsCompiled != len(e.allMethod) {
		return fmt.Errorf("stats.MethodsCompiled = %d, %d method codes installed",
			st.MethodsCompiled, len(e.allMethod))
	}
	invalidated := 0
	var enters, deopts uint64
	for _, mc := range e.allMethod {
		if mc.Invalidated {
			invalidated++
		}
		enters += mc.EnterCount
		deopts += mc.DeoptCount
		if len(mc.Ops) == 0 {
			return fmt.Errorf("method code %d has no ops", mc.ID)
		}
		if mc.AsmLen <= 0 {
			return fmt.Errorf("method code %d has AsmLen %d", mc.ID, mc.AsmLen)
		}
		for i := range mc.Ops {
			if !mc.Covers(mc.Ops[i].PC) {
				return fmt.Errorf("method code %d op %d at pc %d outside region [0,%d]",
					mc.ID, i, mc.Ops[i].PC, mc.End)
			}
			if mc.Ops[i].AsmLen <= 0 {
				return fmt.Errorf("method code %d op %d has AsmLen %d", mc.ID, i, mc.Ops[i].AsmLen)
			}
		}
	}
	if invalidated != st.MethodInvalidated {
		return fmt.Errorf("%d method codes marked invalidated, stats.MethodInvalidated = %d",
			invalidated, st.MethodInvalidated)
	}
	if enters != st.MethodEnters {
		return fmt.Errorf("per-code enter counts sum to %d, stats.MethodEnters = %d", enters, st.MethodEnters)
	}
	if deopts != st.MethodDeopts {
		return fmt.Errorf("per-code deopt counts sum to %d, stats.MethodDeopts = %d", deopts, st.MethodDeopts)
	}
	for codeID, mc := range e.method {
		if mc.CodeID != codeID {
			return fmt.Errorf("method table entry %d holds code %d for function %d", codeID, mc.ID, mc.CodeID)
		}
		if mc.Invalidated {
			return fmt.Errorf("method table entry %d holds invalidated code %d", codeID, mc.ID)
		}
		if !methodInstalled(e.allMethod, mc) {
			return fmt.Errorf("method table entry %d holds uninstalled code %d", codeID, mc.ID)
		}
	}
	// Amalgamation exclusivity: live method code and live baseline
	// fragments never share a function.
	for key, bc := range e.baseline {
		if mc := e.method[key.CodeID]; mc != nil && !mc.Invalidated {
			return fmt.Errorf("function %d has both live method code %d and baseline code %d (method install must invalidate)",
				key.CodeID, mc.ID, bc.ID)
		}
	}
	for name, mcs := range e.methodDeps {
		for _, mc := range mcs {
			if !methodInstalled(e.allMethod, mc) {
				return fmt.Errorf("method global dep %q holds uninstalled code %d", name, mc.ID)
			}
		}
	}
	return nil
}

func methodInstalled(all []*MethodCode, mc *MethodCode) bool {
	for _, x := range all {
		if x == mc {
			return true
		}
	}
	return false
}

func baselineInstalled(all []*BaselineCode, bc *BaselineCode) bool {
	for _, x := range all {
		if x == bc {
			return true
		}
	}
	return false
}

func installed(all []*Trace, t *Trace) bool {
	for _, x := range all {
		if x == t {
			return true
		}
	}
	return false
}
