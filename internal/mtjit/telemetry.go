package mtjit

import (
	"sync/atomic"

	"metajit/internal/telemetry"
)

// engineMetrics is the engine's live telemetry: process-wide counters
// aggregated across every Engine instance (a daemon runs many engines —
// one per simulated VM — and wants compiler activity totals, the way
// RPython's jitlog surfaces them to running users). It complements, not
// replaces, the per-engine EngineStats snapshot.
type engineMetrics struct {
	loops               *telemetry.Counter
	bridges             *telemetry.Counter
	aborts              *telemetry.Counter
	guardFails          *telemetry.Counter
	invalidated         *telemetry.Counter
	baselines           *telemetry.Counter
	baselineDeopts      *telemetry.Counter
	baselineInvalidated *telemetry.Counter
	promotions          *telemetry.Counter
	opsRecorded         *telemetry.Counter
	opsRemoved          *telemetry.Counter
	methods             *telemetry.Counter
	methodDeopts        *telemetry.Counter
	methodInvalidated   *telemetry.Counter
	ctlBackoffDecisions *telemetry.Counter
	ctlEarlyPromotions  *telemetry.Counter
	ctlMethodDecisions  *telemetry.Counter
}

// tele holds the installed metrics; nil until InstallTelemetry. An
// atomic pointer keeps installation racefree against engines running on
// other goroutines, and the per-site cost without a registry is one
// atomic load and a nil test.
var tele atomic.Pointer[engineMetrics]

// telem returns the installed metrics, or nil.
func telem() *engineMetrics { return tele.Load() }

// InstallTelemetry registers the engine's metric families on r and
// routes all subsequent compiler activity (from every engine in the
// process) into them. Installing a nil registry detaches telemetry.
func InstallTelemetry(r *telemetry.Registry) {
	if r == nil {
		tele.Store(nil)
		return
	}
	m := &engineMetrics{
		loops:               r.Counter("mtjit_traces_compiled_total", "Traces installed by the meta-tracing JIT.", "kind", "loop"),
		bridges:             r.Counter("mtjit_traces_compiled_total", "Traces installed by the meta-tracing JIT.", "kind", "bridge"),
		aborts:              r.Counter("mtjit_trace_aborts_total", "Recordings abandoned before installation."),
		guardFails:          r.Counter("mtjit_guard_failures_total", "Guard failures during trace execution."),
		invalidated:         r.Counter("mtjit_invalidations_total", "Compiled code invalidated by a global mutation or a tier promotion.", "tier", "trace"),
		baselineInvalidated: r.Counter("mtjit_invalidations_total", "Compiled code invalidated by a global mutation or a tier promotion.", "tier", "baseline"),
		baselines:           r.Counter("mtjit_baseline_compiles_total", "Tier-1 baseline compilations installed."),
		baselineDeopts:      r.Counter("mtjit_baseline_deopts_total", "Tier-1 generic-guard deoptimizations."),
		promotions:          r.Counter("mtjit_baseline_promotions_total", "Loop headers promoted from tier-1 baseline code to a compiled trace."),
		opsRecorded:         r.Counter("mtjit_trace_ops_total", "IR operations recorded into traces.", "stage", "recorded"),
		opsRemoved:          r.Counter("mtjit_trace_ops_total", "IR operations recorded into traces.", "stage", "removed"),
		methods:             r.Counter("mtjit_method_compiles_total", "Tier-2 method compilations installed."),
		methodDeopts:        r.Counter("mtjit_method_deopts_total", "Tier-2 generic-guard deoptimizations."),
		methodInvalidated:   r.Counter("mtjit_invalidations_total", "Compiled code invalidated by a global mutation or a tier promotion.", "tier", "method"),
		ctlBackoffDecisions: r.Counter("mtjit_controller_decisions_total", "Tier-controller promotion decisions.", "kind", "trace_backoff"),
		ctlEarlyPromotions:  r.Counter("mtjit_controller_decisions_total", "Tier-controller promotion decisions.", "kind", "trace_early"),
		ctlMethodDecisions:  r.Counter("mtjit_controller_decisions_total", "Tier-controller promotion decisions.", "kind", "method"),
	}
	tele.Store(m)
}
