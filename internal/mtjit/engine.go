package mtjit

import (
	"metajit/internal/aot"
	"metajit/internal/core"
	"metajit/internal/heap"
	"metajit/internal/isa"
)

// EngineStats accumulates JIT bookkeeping for reporting.
type EngineStats struct {
	LoopsCompiled   int
	BridgesCompiled int
	Aborts          int
	AbortsTooLong   int
	AbortsLeftFrame int
	OpsRecorded     int
	OpsRemoved      int // by the optimizer
	GuardFailures   uint64
	Invalidated     int // traces killed by a global mutation

	// Tier-1 (baseline threaded-code) bookkeeping.
	BaselinesCompiled   int
	BaselineInvalidated int // killed by promotion or global mutation
	BaselineEnters      uint64
	BaselineDeopts      uint64

	// Tier-2 (method compilation) bookkeeping.
	MethodsCompiled   int
	MethodInvalidated int // killed by global mutation
	MethodEnters      uint64
	MethodDeopts      uint64

	// Tier-controller bookkeeping: promotion decisions the adaptive
	// controller made under a non-static threshold, and method-tier
	// decisions. Zero on non-adaptive engines by construction.
	CtlBackoffDecisions int // TierTrace fired under an abort-raised threshold
	CtlEarlyPromotions  int // TierTrace fired under a warmup-lowered threshold
	CtlMethodDecisions  int // TierMethod decisions
}

// Engine is the meta-tracing JIT: it owns hot-loop counters, recordings in
// progress, the trace cache, guard-failure bookkeeping, and bridges.
type Engine struct {
	RT *aot.Runtime
	H  *heap.Heap
	S  isa.Stream

	// Profile is the cost profile of the plain interpreter the engine
	// falls back to.
	Profile *CostProfile
	// Opts selects optimizer passes (ablations toggle these).
	Opts OptConfig
	// Threshold is the loop-header count that triggers tracing (PyPy's
	// --jit threshold, scaled to the simulator's workload sizes).
	Threshold int
	// BridgeThreshold is the guard-failure count that triggers bridge
	// compilation.
	BridgeThreshold int
	// TraceLimit aborts recordings that grow too long.
	TraceLimit int
	// MaxAborts blacklists a loop after this many failed recordings.
	MaxAborts int
	// BaselineThreshold, when positive, enables the tier-1 baseline
	// compiler: loop headers crossing it (well below Threshold) get
	// threaded-code compilation while the hot counter keeps running.
	// Zero disables the tier (single-tier behavior, bit-identical to
	// the pre-tier engine).
	BaselineThreshold int
	// MethodThreshold, when positive, enables the tier-2 method
	// compiler (the amalgamated strategy): a guest function whose loop
	// headers accumulate this many crossings becomes eligible for
	// whole-function compilation when the tier controller judges its
	// region trace-hostile (see Engine.hostile). Zero disables the
	// tier (bit-identical to the pre-method engine).
	MethodThreshold int
	// Adaptive enables the feedback tier controller: the static
	// Threshold is reshaped per loop header from the engine's own
	// observed event history (trace-abort backoff, warmup-slope early
	// promotion; see controller.go). Decisions are a pure function of
	// per-engine state, so runs stay deterministic and replayable.
	Adaptive bool

	// OnCompile, if set, is invoked for every installed trace or bridge
	// (the PyPy-log hook).
	OnCompile func(*Trace)

	// ForceGuardFail, if set, is consulted for every guard that passed
	// its runtime check during trace execution; returning true makes the
	// guard fail anyway. Deoptimization testing hook: it exercises the
	// bridge/blackhole exit paths at guards whose conditions hold.
	ForceGuardFail func(*Trace, *Op) bool

	// OnBaselineCompile, if set, is invoked for every installed baseline
	// compilation (the tier-1 analog of OnCompile).
	OnBaselineCompile func(*BaselineCode)

	// ForceBaselineGuardFail, if set, is consulted at every generic
	// guard executed in baseline code; returning true deoptimizes to the
	// interpreter at the next bytecode boundary. Tier-1 analog of
	// ForceGuardFail.
	ForceBaselineGuardFail func(*BaselineCode, uint64) bool

	// OnMethodCompile, if set, is invoked for every installed method
	// compilation (the tier-2 analog of OnCompile).
	OnMethodCompile func(*MethodCode)

	// ForceMethodGuardFail, if set, is consulted at every generic guard
	// executed in method code; returning true deoptimizes to the
	// interpreter at the next bytecode boundary. Tier-2 analog of
	// ForceGuardFail.
	ForceMethodGuardFail func(*MethodCode, uint64) bool

	counters  map[GreenKey]int
	blacklist map[GreenKey]int
	traces    map[GreenKey]*Trace
	all       []*Trace
	bridges   map[uint32]*Trace

	guardFails          map[uint32]int
	pendingBridgeResume map[uint32]*ResumeState

	// globalDeps maps a global name to the installed traces that
	// constant-folded its value (see TracingMachine.DependOnGlobal).
	globalDeps map[string][]*Trace

	// Tier-1 bookkeeping: installed baseline code by green key, headers
	// that could not be lowered, the compile log, and global-value
	// dependencies (baseline code embeds globals like an inline cache).
	baseline       map[GreenKey]*BaselineCode
	baselineFailed map[GreenKey]bool
	allBaseline    []*BaselineCode
	baselineDeps   map[string][]*BaselineCode
	baselineSeq    uint32

	// Tier-2 bookkeeping: installed method code by function, functions
	// that could not be lowered, the compile log, global-value
	// dependencies, and per-function hotness accumulation.
	method         map[uint32]*MethodCode
	methodFailed   map[uint32]bool
	allMethod      []*MethodCode
	methodDeps     map[string][]*MethodCode
	methodCounters map[uint32]int
	methodSeq      uint32

	// keyGuardFails attributes trace guard failures to the loop header
	// whose trace they fired in — the controller's per-site
	// guard-failure-rate signal.
	keyGuardFails map[GreenKey]int

	// ctlLog records promotion decisions in the order they were made;
	// only maintained when the method tier or the adaptive controller
	// is on (TestControllerDeterministic compares logs across runs).
	ctlLog []ControllerDecision

	guardSeq uint32
	traceSeq uint32
	tracing  *TracingMachine

	jitPC   *isa.PCAlloc
	bhSite  isa.Site
	cmpSite isa.Site
	lastOvf bool

	activeRegs []*[]heap.Value
	// regsPool recycles trace register files: every loop entry from the
	// interpreter and every bridge transfer needs one, so Execute would
	// otherwise allocate on each — a measurable share of the simulator's
	// host allocation pressure on JIT-heavy cells. Pooled slices are not
	// in activeRegs and are zeroed on reuse, so they are invisible to the
	// simulated GC.
	regsPool [][]heap.Value
	stats    EngineStats
}

// Config bundles the Engine's tunable tier thresholds. Constructing an
// engine through a Config validates and clamps degenerate threshold
// orderings (see normalize) instead of letting the tier state machine
// silently misbehave on inverted values.
type Config struct {
	// Threshold is the loop-header count that triggers tracing.
	Threshold int
	// BridgeThreshold is the guard-failure count that triggers bridge
	// compilation.
	BridgeThreshold int
	// TraceLimit aborts recordings that grow too long.
	TraceLimit int
	// MaxAborts blacklists a loop after this many failed recordings.
	MaxAborts int
	// BaselineThreshold enables the tier-1 baseline compiler when
	// positive (must stay below Threshold; normalize enforces it).
	BaselineThreshold int
	// MethodThreshold enables the tier-2 method compiler when positive.
	MethodThreshold int
	// Adaptive enables the feedback tier controller.
	Adaptive bool
}

// DefaultConfig returns the default thresholds (PyPy's, scaled to the
// simulator's workload sizes); the baseline and method tiers are off
// and promotion is static.
func DefaultConfig() Config {
	return Config{
		Threshold:       57,
		BridgeThreshold: 17,
		TraceLimit:      6000,
		MaxAborts:       4,
	}
}

// normalize validates and clamps a Config so a constructed engine never
// runs with degenerate tier orderings: non-positive core thresholds
// fall back to their defaults (a BridgeThreshold that is zero or
// negative could never equal a failure count, silently disabling
// bridges), a negative tier threshold disables that tier, and a
// BaselineThreshold at or above Threshold is pulled down to
// Threshold-1 — tier-1 must engage below the tracing threshold or the
// baseline compiler would never run before promotion.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	if c.BridgeThreshold <= 0 {
		c.BridgeThreshold = d.BridgeThreshold
	}
	if c.TraceLimit <= 0 {
		c.TraceLimit = d.TraceLimit
	}
	if c.MaxAborts <= 0 {
		c.MaxAborts = d.MaxAborts
	}
	if c.BaselineThreshold < 0 {
		c.BaselineThreshold = 0
	}
	if c.MethodThreshold < 0 {
		c.MethodThreshold = 0
	}
	if c.BaselineThreshold >= c.Threshold {
		c.BaselineThreshold = c.Threshold - 1
	}
	return c
}

// NewEngine returns an engine over the runtime with default thresholds.
// It registers itself as a GC root provider (live trace registers and
// trace constants are roots).
func NewEngine(rt *aot.Runtime, profile *CostProfile) *Engine {
	return NewEngineConfig(rt, profile, DefaultConfig())
}

// NewEngineConfig returns an engine with the normalized config applied.
func NewEngineConfig(rt *aot.Runtime, profile *CostProfile, cfg Config) *Engine {
	cfg = cfg.normalize()
	e := &Engine{
		RT:                  rt,
		H:                   rt.H,
		S:                   rt.H.Stream(),
		Profile:             profile,
		Opts:                AllOpts(),
		Threshold:           cfg.Threshold,
		BridgeThreshold:     cfg.BridgeThreshold,
		TraceLimit:          cfg.TraceLimit,
		MaxAborts:           cfg.MaxAborts,
		BaselineThreshold:   cfg.BaselineThreshold,
		MethodThreshold:     cfg.MethodThreshold,
		Adaptive:            cfg.Adaptive,
		counters:            map[GreenKey]int{},
		blacklist:           map[GreenKey]int{},
		traces:              map[GreenKey]*Trace{},
		bridges:             map[uint32]*Trace{},
		guardFails:          map[uint32]int{},
		pendingBridgeResume: map[uint32]*ResumeState{},
		globalDeps:          map[string][]*Trace{},
		baseline:            map[GreenKey]*BaselineCode{},
		baselineFailed:      map[GreenKey]bool{},
		baselineDeps:        map[string][]*BaselineCode{},
		method:              map[uint32]*MethodCode{},
		methodFailed:        map[uint32]bool{},
		methodDeps:          map[string][]*MethodCode{},
		methodCounters:      map[uint32]int{},
		keyGuardFails:       map[GreenKey]int{},
		jitPC:               isa.NewPCAlloc(isa.RegionJITCode),
		bhSite:              rt.PC.Site(),
		cmpSite:             rt.PC.Site(),
	}
	rt.H.AddRoots(e)
	return e
}

// getRegs returns a zeroed register file of length n, reusing a pooled
// slice when one is big enough (same semantics as make).
func (e *Engine) getRegs(n int) []heap.Value {
	if k := len(e.regsPool); k > 0 {
		r := e.regsPool[k-1]
		e.regsPool = e.regsPool[:k-1]
		if cap(r) >= n {
			r = r[:n]
			for i := range r {
				r[i] = heap.Value{}
			}
			return r
		}
	}
	return make([]heap.Value, n)
}

// putRegs returns a register file to the pool. The caller must have
// removed it from activeRegs (or replaced its slot) first.
func (e *Engine) putRegs(r []heap.Value) {
	e.regsPool = append(e.regsPool, r[:0])
}

// Roots implements heap.RootProvider: live JIT register files and trace
// constants keep objects alive.
func (e *Engine) Roots(visit func(*heap.Obj)) {
	for _, regs := range e.activeRegs {
		for _, v := range *regs {
			if v.Kind == heap.KindRef && v.O != nil {
				visit(v.O)
			}
		}
	}
	for _, t := range e.all {
		for _, c := range t.Consts {
			if c.Kind == heap.KindRef && c.O != nil {
				visit(c.O)
			}
		}
	}
	if e.tracing != nil {
		for _, c := range e.tracing.consts {
			if c.Kind == heap.KindRef && c.O != nil {
				visit(c.O)
			}
		}
	}
}

// Stats returns a copy of the engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// Traces returns every installed trace and bridge in compile order.
func (e *Engine) Traces() []*Trace { return e.all }

// Tracing returns the recording in progress, or nil.
func (e *Engine) Tracing() *TracingMachine { return e.tracing }

// LookupTrace returns the compiled loop trace for a green key, or nil.
func (e *Engine) LookupTrace(key GreenKey) *Trace { return e.traces[key] }

// PendingBridgeResume returns (and consumes) the resume state of a guard
// whose failure count just crossed the bridge threshold.
func (e *Engine) PendingBridgeResume(guardID uint32) *ResumeState {
	r := e.pendingBridgeResume[guardID]
	delete(e.pendingBridgeResume, guardID)
	return r
}

func (e *Engine) nextGuardID() uint32 {
	e.guardSeq++
	return e.guardSeq
}

// beginTraceBlock is the fixed cost of entering recording mode (tracer
// state setup), shared by loop and bridge recordings.
var beginTraceBlock = isa.NewBlock(isa.CC(isa.ALU, 60), isa.CC(isa.Store, 20))

// BeginTracing starts recording the loop at key. The frame's slots are
// seeded with input refs; snap captures resume metadata at guards. The
// returned TracingMachine replaces the driver's Machine until the loop
// closes or aborts.
func (e *Engine) BeginTracing(key GreenKey, fr FrameAdapter, snap SnapshotFn) *TracingMachine {
	e.S.Annot(core.TagTraceStart, uint64(key.CodeID)<<16|uint64(key.PC))
	tm := newTracingMachine(NewDirectMachine(e.RT, e.Profile), e)
	tm.snapshot = snap
	tm.rootKey = key
	n := fr.NumSlots()
	slots := make([]Ref, n)
	for i := 0; i < n; i++ {
		r := Ref(i + 1)
		fr.SetSlotRef(i, r)
		slots[i] = r
	}
	tm.nextReg = Ref(n + 1)
	tm.entry = &ResumeState{Frames: []FrameSnap{{
		CodeID:    fr.CodeID(),
		PC:        fr.GuestPC(),
		NumLocals: fr.NumLocals(),
		Slots:     slots,
		Ctor:      fr.IsCtor(),
	}}}
	e.tracing = tm
	e.S.Block(beginTraceBlock)
	return tm
}

// BeginBridge starts recording a bridge for guardID from the reconstructed
// frame chain (trace-root frame first).
func (e *Engine) BeginBridge(guardID uint32, resume *ResumeState, frames []FrameAdapter, snap SnapshotFn) *TracingMachine {
	e.S.Annot(core.TagTraceStart, core.TraceStartBridge|uint64(guardID))
	tm := newTracingMachine(NewDirectMachine(e.RT, e.Profile), e)
	tm.snapshot = snap
	tm.bridge = true
	tm.fromGrd = guardID
	next := Ref(1)
	snaps := make([]FrameSnap, len(frames))
	for fi, fr := range frames {
		n := fr.NumSlots()
		slots := make([]Ref, n)
		for i := 0; i < n; i++ {
			fr.SetSlotRef(i, next)
			slots[i] = next
			next++
		}
		snaps[fi] = FrameSnap{
			CodeID:    fr.CodeID(),
			PC:        fr.GuestPC(),
			NumLocals: fr.NumLocals(),
			Slots:     slots,
			Ctor:      fr.IsCtor(),
		}
	}
	tm.nextReg = next
	tm.entry = &ResumeState{Frames: snaps}
	if resume != nil && len(resume.Frames) != len(frames) {
		panic("mtjit: bridge frame chain does not match guard resume")
	}
	e.tracing = tm
	e.S.Block(beginTraceBlock)
	return tm
}

// MPAction is the driver instruction returned from a merge point reached
// while tracing.
type MPAction uint8

// Merge-point actions.
const (
	// MPContinue: keep recording through this merge point (inlining).
	MPContinue MPAction = iota
	// MPLoopClosed: the recording was finished and installed (or ended
	// in call_assembler); the driver resumes plain interpretation.
	MPLoopClosed
	// MPAborted: the recording was abandoned; resume plain
	// interpretation.
	MPAborted
)

// AtMergePoint is called by the driver at every loop header crossed while
// recording. depth is the guest frame depth relative to the trace root
// (1 = the root frame).
func (e *Engine) AtMergePoint(tm *TracingMachine, key GreenKey, depth int, fr FrameAdapter) MPAction {
	if tm.aborted {
		e.AbortTrace(tm)
		return MPAborted
	}
	if depth == 1 && !tm.bridge && key == tm.rootKey {
		e.finishLoop(tm, key, fr)
		return MPLoopClosed
	}
	if target := e.traces[key]; target != nil {
		if tm.bridge && depth == 1 {
			e.finishBridgeJump(tm, target, fr)
		} else {
			e.finishCallAssembler(tm, target)
		}
		return MPLoopClosed
	}
	return MPContinue
}

// AbortTrace abandons the active recording.
func (e *Engine) AbortTrace(tm *TracingMachine, reason ...AbortReason) {
	r := tm.reason
	if len(reason) > 0 {
		r = reason[0]
	}
	e.S.Annot(core.TagTraceAbort, uint64(r))
	e.stats.Aborts++
	if m := telem(); m != nil {
		m.aborts.Inc()
	}
	switch r {
	case AbortTooLong:
		e.stats.AbortsTooLong++
	case AbortLeftFrame:
		e.stats.AbortsLeftFrame++
	}
	if !tm.bridge {
		e.blacklist[tm.rootKey]++
	}
	e.tracing = nil
}

// finishLoop closes a loop recording with a jump back to its own header.
func (e *Engine) finishLoop(tm *TracingMachine, key GreenKey, fr FrameAdapter) {
	args := make([]Ref, fr.NumSlots())
	for i := range args {
		args[i] = fr.SlotRef(i)
	}
	tm.rec(Op{Opc: OpJump, Args: args}, false)
	t := e.install(tm, key, false)
	e.traces[key] = t
}

// finishBridgeJump closes a bridge with a jump into an existing loop.
func (e *Engine) finishBridgeJump(tm *TracingMachine, target *Trace, fr FrameAdapter) {
	args := make([]Ref, fr.NumSlots())
	for i := range args {
		args[i] = fr.SlotRef(i)
	}
	if len(args) != len(target.Entry.Frames[0].Slots) {
		// Shapes disagree (stack depth changed): exit via finish
		// instead; the interpreter will enter the loop itself.
		tm.rec(Op{Opc: OpFinish, Resume: tm.captureResume()}, false)
		t := e.install(tm, target.Key, true)
		e.bridges[tm.fromGrd] = t
		return
	}
	tm.rec(Op{Opc: OpJump, Args: args, Target: target}, false)
	t := e.install(tm, target.Key, true)
	e.bridges[tm.fromGrd] = t
}

// finishCallAssembler ends a recording that reached another compiled loop:
// the trace transfers into that loop's assembly.
func (e *Engine) finishCallAssembler(tm *TracingMachine, target *Trace) {
	tm.rec(Op{
		Opc:    OpCallAssembler,
		Target: target,
		Resume: tm.captureResume(),
	}, false)
	if tm.bridge {
		t := e.install(tm, target.Key, true)
		e.bridges[tm.fromGrd] = t
	} else {
		t := e.install(tm, tm.rootKey, false)
		e.traces[tm.rootKey] = t
	}
}

// install optimizes, assembles, and publishes a recording.
func (e *Engine) install(tm *TracingMachine, key GreenKey, bridge bool) *Trace {
	e.traceSeq++
	t := &Trace{
		ID:       e.traceSeq,
		Key:      key,
		Bridge:   bridge,
		Entry:    tm.entry,
		Ops:      tm.ops,
		Consts:   tm.consts,
		NumRegs:  int(tm.nextReg),
		BCLength: tm.bcCount,
	}
	recorded := len(t.Ops)
	removed := Optimize(t, e.Opts)
	e.assemble(t)
	t.OpExecs = make([]uint64, len(t.Ops))

	// Optimizer + assembler cost, proportional to the recorded ops
	// (attributed to the tracing phase, as in the paper).
	e.S.Ops(isa.ALU, 150*recorded)
	e.S.Ops(isa.Load, 55*recorded)
	e.S.Ops(isa.Store, 30*recorded)
	for i := 0; i < recorded/4+1; i++ {
		e.S.Branch(e.cmpSite.PC(), i&3 != 0)
	}

	e.stats.OpsRecorded += recorded
	e.stats.OpsRemoved += removed
	if m := telem(); m != nil {
		m.opsRecorded.Add(uint64(recorded))
		m.opsRemoved.Add(uint64(removed))
		if bridge {
			m.bridges.Inc()
		} else {
			m.loops.Inc()
		}
	}
	if bridge {
		e.stats.BridgesCompiled++
	} else {
		e.stats.LoopsCompiled++
	}
	for name := range tm.deps {
		e.globalDeps[name] = append(e.globalDeps[name], t)
	}
	if !bridge {
		// Promotion: the loop trace supersedes any tier-1 code for the
		// same header.
		if bc := e.baseline[key]; bc != nil {
			e.invalidateBaseline(bc)
			if m := telem(); m != nil {
				m.promotions.Inc()
			}
		}
	}
	e.all = append(e.all, t)
	e.tracing = nil
	e.S.Annot(core.TagTraceEnd, uint64(t.ID))
	e.S.Annot(core.TagTraceCompiled, uint64(t.ID))
	if e.OnCompile != nil {
		e.OnCompile(t)
	}
	return t
}

// assemble assigns the trace's simulated code region and per-op PCs.
func (e *Engine) assemble(t *Trace) {
	t.OpPCs = make([]uint64, len(t.Ops))
	off := uint64(0)
	for i := range t.Ops {
		t.OpPCs[i] = off
		off += uint64(t.Ops[i].Opc.AsmLen()) * 4
	}
	t.AsmLen = int(off / 4)
	t.AsmBase = e.jitPC.Take(off + 64)
}

// GuardFailCount returns how often a guard has failed.
func (e *Engine) GuardFailCount(id uint32) int { return e.guardFails[id] }

// InvalidateGlobal kills every installed trace that constant-folded the
// named global: each is marked invalidated (its guard_not_invalidated
// ops fail from now on, deoptimizing any execution that reaches them)
// and unlinked from the dispatch tables so it is never entered fresh.
// The traces stay in the compile log (Traces/stats) — invalidation does
// not rewrite history, it only stops the code from running.
func (e *Engine) InvalidateGlobal(name string) {
	if mcs := e.methodDeps[name]; len(mcs) > 0 {
		delete(e.methodDeps, name)
		for _, mc := range mcs {
			e.invalidateMethod(mc)
		}
	}
	if bcs := e.baselineDeps[name]; len(bcs) > 0 {
		delete(e.baselineDeps, name)
		for _, bc := range bcs {
			e.invalidateBaseline(bc)
		}
	}
	ts := e.globalDeps[name]
	if len(ts) == 0 {
		return
	}
	delete(e.globalDeps, name)
	// Walking the dependency list and patching the guards costs a few
	// instructions per dependent trace, as in RPython's invalidation.
	e.S.Ops(isa.ALU, 6*len(ts))
	e.S.Ops(isa.Store, 2*len(ts))
	for _, t := range ts {
		if t.Invalidated {
			continue
		}
		t.Invalidated = true
		e.stats.Invalidated++
		if m := telem(); m != nil {
			m.invalidated.Inc()
		}
		if e.traces[t.Key] == t {
			delete(e.traces, t.Key)
		}
		for id, b := range e.bridges {
			if b == t {
				delete(e.bridges, id)
			}
		}
	}
}
