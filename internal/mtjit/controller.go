package mtjit

// This file implements the adaptive tier controller: the replacement
// for the static BaselineThreshold/Threshold pair. Instead of one
// global tracing threshold, each loop header gets an effective
// threshold derived from the engine's own observed event history —
// trace-abort counts back promotion off, a clean tier-1 warmup slope
// pulls it forward, and guard-failure traffic feeds the method tier's
// hostility judgment (Engine.hostile).
//
// Determinism contract: every controller input is per-Engine state
// that is itself maintained deterministically (abort counts, baseline
// enter/deopt counts, per-header guard-failure attribution). The
// controller never reads the process-global telemetry registry — those
// counters are shared across engines and parallel runs, so consuming
// them would break `-j1 == -jN` and memoization. It only *writes*
// decision counts there for observability. Controller-relevant
// configuration (MethodThreshold, Adaptive) enters harness.CellKey, so
// memoized results can never alias across controller settings.

// Controller tuning constants.
const (
	// ctlAbortBackoffMax caps the abort-driven threshold doubling:
	// after this many failed recordings the header pays 8x the static
	// threshold per attempt until MaxAborts blacklists it.
	ctlAbortBackoffMax = 3
	// ctlWarmupEnters is the tier-1 enter count at which a deopt-free
	// loop is considered warm with a stable slope and promoted early.
	ctlWarmupEnters = 4
	// methodGuardHostile is the per-header trace-guard-failure count
	// past which the header's region counts as trace-hostile (above
	// one bridge's worth of failures at the default BridgeThreshold).
	methodGuardHostile = 24
)

// ControllerDecision is one recorded promotion decision: which header,
// which tier, and the effective tracing threshold in force when it
// fired. TestControllerDeterministic compares whole logs across -j1,
// -jN, and record/replay runs.
type ControllerDecision struct {
	Key       GreenKey
	Event     TierEvent
	Threshold int
}

// ControllerLog returns the promotion decisions made so far, in order.
// Empty unless the method tier or the adaptive controller is enabled
// (static single- and two-tier engines pay nothing for it).
func (e *Engine) ControllerLog() []ControllerDecision { return e.ctlLog }

// EffectiveThreshold reports the tracing threshold currently in effect
// for a loop header — the static Threshold, or the controller's
// adjusted value when Adaptive is on. Read-only introspection surface;
// hostbench uses it to price the controller's per-header-visit cost
// (detached vs adaptive).
func (e *Engine) EffectiveThreshold(key GreenKey) int {
	return e.traceThresholdFor(key)
}

// traceThresholdFor returns the tracing threshold in effect for a loop
// header. With Adaptive off it is the static Threshold (and costs
// nothing extra). With Adaptive on:
//
//   - Abort backoff: every failed recording at the header doubles the
//     price of the next attempt (threshold << aborts, capped), so
//     abort-prone loops stop burning tracing time long before the
//     MaxAborts blacklist and the work runs in cheaper tiers instead.
//   - Warmup-slope early promotion: a header whose tier-1 code has run
//     ctlWarmupEnters times without a single deopt has a proven stable
//     type profile — the recording will almost certainly succeed, so
//     the threshold drops by a quarter to shorten warmup.
func (e *Engine) traceThresholdFor(key GreenKey) int {
	if !e.Adaptive {
		return e.Threshold
	}
	th := e.Threshold
	if a := e.blacklist[key]; a > 0 {
		if a > ctlAbortBackoffMax {
			a = ctlAbortBackoffMax
		}
		return th << uint(a)
	}
	if bc := e.baseline[key]; bc != nil && !bc.Invalidated &&
		bc.DeoptCount == 0 && bc.EnterCount >= ctlWarmupEnters {
		return th - th/4
	}
	return th
}

// hostile reports whether a header's observed behavior marks its
// region trace-hostile — the method tier's admission rule. Hostility
// is: recording aborts at the header, a failed tier-1 lowering
// (irreducible control flow defeats both the baseline lowering and the
// tracer's loop assumption), or guard-failure traffic past
// methodGuardHostile (megamorphic dispatch keeps failing trace
// guards). A strategy mix whose tracing threshold sits above the
// method threshold prefers methods outright, so plain hotness
// qualifies there — that is what makes a method-only configuration
// (Threshold effectively infinite) compile every hot function.
func (e *Engine) hostile(key GreenKey) bool {
	if e.blacklist[key] > 0 || e.baselineFailed[key] {
		return true
	}
	if e.keyGuardFails[key] >= methodGuardHostile {
		return true
	}
	return e.Threshold > e.MethodThreshold
}

// recordDecision appends to the controller log and bumps the decision
// stats. A no-op on static engines (no method tier, no adaptive
// controller), keeping them allocation- and bookkeeping-identical to
// the pre-controller engine.
func (e *Engine) recordDecision(key GreenKey, ev TierEvent) {
	if !e.Adaptive && e.MethodThreshold <= 0 {
		return
	}
	th := e.traceThresholdFor(key)
	e.ctlLog = append(e.ctlLog, ControllerDecision{Key: key, Event: ev, Threshold: th})
	m := telem()
	switch {
	case ev == TierMethod:
		e.stats.CtlMethodDecisions++
		if m != nil {
			m.ctlMethodDecisions.Inc()
		}
	case th > e.Threshold:
		e.stats.CtlBackoffDecisions++
		if m != nil {
			m.ctlBackoffDecisions.Inc()
		}
	case th < e.Threshold:
		e.stats.CtlEarlyPromotions++
		if m != nil {
			m.ctlEarlyPromotions.Inc()
		}
	}
}
