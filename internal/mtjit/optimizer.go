package mtjit

import "metajit/internal/heap"

// Optimizer settings; the ablation benches toggle these.
type OptConfig struct {
	Fold     bool // constant folding
	Guards   bool // redundant-guard elimination
	CSE      bool // heap-access CSE / store-to-load forwarding
	Virtuals bool // escape analysis / allocation removal
	DCE      bool // dead code elimination
}

// AllOpts enables every pass (the production configuration).
func AllOpts() OptConfig {
	return OptConfig{Fold: true, Guards: true, CSE: true, Virtuals: true, DCE: true}
}

// NoOpts disables every pass (ablation baseline).
func NoOpts() OptConfig { return OptConfig{} }

// optimizer rewrites a recorded trace in place. Refs are SSA: each register
// is assigned exactly once, so facts about a ref hold for the rest of the
// trace.
type optimizer struct {
	cfg    OptConfig
	ops    []Op
	consts []heap.Value

	subst map[Ref]Ref // replacement refs (folding, CSE forwarding)

	knownClass map[Ref]*heap.Shape
	knownTruth map[Ref]bool
	knownValue map[Ref]bool // guard_value already emitted
	nonnull    map[Ref]bool

	fieldCache map[fieldKey]Ref
	elemCache  map[elemKey]Ref
	lenCache   map[Ref]Ref

	virtual map[Ref]*virtState

	removed []bool
}

type fieldKey struct {
	obj Ref
	idx int64
}

type elemKey struct {
	obj Ref
	idx Ref
}

type virtState struct {
	shape    *heap.Shape
	isArray  bool
	fields   []Ref
	elems    []Ref
	numField int
}

// Optimize runs the configured passes over the trace and returns the
// number of ops removed (compile-effort statistics).
func Optimize(t *Trace, cfg OptConfig) int {
	o := &optimizer{
		cfg:        cfg,
		ops:        t.Ops,
		consts:     t.Consts,
		subst:      map[Ref]Ref{},
		knownClass: map[Ref]*heap.Shape{},
		knownTruth: map[Ref]bool{},
		knownValue: map[Ref]bool{},
		nonnull:    map[Ref]bool{},
		fieldCache: map[fieldKey]Ref{},
		elemCache:  map[elemKey]Ref{},
		lenCache:   map[Ref]Ref{},
		virtual:    map[Ref]*virtState{},
		removed:    make([]bool, len(t.Ops)),
	}
	if cfg.Virtuals {
		o.findVirtuals()
	}
	o.forward()
	if cfg.DCE {
		o.dce()
	}
	// Compact.
	kept := t.Ops[:0]
	removedCount := 0
	for i := range o.ops {
		if o.removed[i] {
			removedCount++
			continue
		}
		kept = append(kept, o.ops[i])
	}
	t.Ops = kept
	t.Consts = o.consts
	return removedCount
}

// constVal returns the constant value of a ref if it is constant.
func (o *optimizer) constVal(r Ref) (heap.Value, bool) {
	if r.IsConst() {
		return o.consts[r.ConstIndex()], true
	}
	return heap.Nil, false
}

func (o *optimizer) resolve(r Ref) Ref {
	for {
		s, ok := o.subst[r]
		if !ok {
			return r
		}
		r = s
	}
}

func (o *optimizer) internConst(v heap.Value) Ref {
	o.consts = append(o.consts, v)
	return ConstRef(len(o.consts) - 1)
}

// findVirtuals computes the escape fixpoint over allocation results. The
// pre-pass simulates the forward pass's store-to-load forwarding so that a
// value read back out of a candidate (possibly another candidate) is
// correctly escaped when the read result is used in an escaping position.
func (o *optimizer) findVirtuals() {
	candidates := map[Ref]int{} // ref -> op index
	for i := range o.ops {
		op := &o.ops[i]
		if op.Opc == OpNewWithVtable || op.Opc == OpNewArray {
			candidates[op.Res] = i
		}
	}
	escaped := map[Ref]bool{}
	// aliasOf forwards getfield/getarrayitem results from candidates to
	// the stored value (exact in a straight-line SSA trace).
	aliasOf := map[Ref]Ref{}
	resolve := func(r Ref) Ref {
		for {
			a, ok := aliasOf[r]
			if !ok {
				return r
			}
			r = a
		}
	}
	fieldOf := map[fieldKey]Ref{}
	elemOf := map[fieldKey]Ref{}
	// storedInto[v] lists candidate objects that v was stored into; if
	// the container escapes, so does the content.
	storedInto := map[Ref][]Ref{}
	// markEscape reports whether it changed anything: non-candidates
	// never do, which guarantees the fixpoint below terminates.
	markEscape := func(r Ref) bool {
		r = resolve(r)
		if _, isCand := candidates[r]; isCand && !escaped[r] {
			escaped[r] = true
			return true
		}
		return false
	}
	constIdxOf := func(r Ref) (int64, bool) {
		if v, ok := o.constVal(r); ok && v.Kind == heap.KindInt {
			return v.I, true
		}
		return 0, false
	}
	for i := range o.ops {
		op := &o.ops[i]
		switch op.Opc {
		case OpSetfieldGC:
			if _, ok := candidates[resolve(op.A)]; ok {
				a := resolve(op.A)
				b := resolve(op.B)
				fieldOf[fieldKey{obj: a, idx: op.Aux}] = b
				storedInto[b] = append(storedInto[b], a)
			} else {
				markEscape(op.B) // stored into a real object
			}
		case OpSetarrayitemGC:
			a := resolve(op.A)
			if _, ok := candidates[a]; ok {
				idx, constIdx := constIdxOf(op.B)
				if !constIdx {
					// Dynamic index: the forward pass cannot track
					// the element; force the container.
					markEscape(a)
					markEscape(op.C)
				} else {
					c := resolve(op.C)
					elemOf[fieldKey{obj: a, idx: idx}] = c
					storedInto[c] = append(storedInto[c], a)
				}
			} else {
				markEscape(op.C)
			}
		case OpGetfieldGC:
			if a := resolve(op.A); isCandidate(candidates, a) {
				if v, ok := fieldOf[fieldKey{obj: a, idx: op.Aux}]; ok {
					aliasOf[op.Res] = v
				}
			}
		case OpGetarrayitemGC:
			if a := resolve(op.A); isCandidate(candidates, a) {
				idx, constIdx := constIdxOf(op.B)
				if !constIdx {
					markEscape(a)
				} else if v, ok := elemOf[fieldKey{obj: a, idx: idx}]; ok {
					aliasOf[op.Res] = v
				}
			}
		case OpArraylenGC, OpStrlen, OpUnicodelen:
			// Length reads never escape.
		case OpJump, OpFinish:
			for _, a := range op.Args {
				markEscape(a)
			}
		case OpPtrEq, OpPtrNe, OpSameAs:
			markEscape(op.A)
			markEscape(op.B)
		case OpGuardValue, OpGuardIsnull:
			markEscape(op.A)
		default:
			if op.Opc.IsCall() {
				for _, a := range op.Args {
					markEscape(a)
				}
			}
		}
	}
	// Propagate: content of an escaping container escapes.
	for changed := true; changed; {
		changed = false
		for content, containers := range storedInto {
			if escaped[resolve(content)] {
				continue
			}
			for _, c := range containers {
				if escaped[resolve(c)] {
					if markEscape(content) {
						changed = true
					}
					break
				}
			}
		}
	}
	// Escaped containers force their contents transitively through the
	// alias map as well: re-run once more over stores.
	for changed := true; changed; {
		changed = false
		for k, v := range fieldOf {
			if escaped[resolve(k.obj)] && markEscape(v) {
				changed = true
			}
		}
		for k, v := range elemOf {
			if escaped[resolve(k.obj)] && markEscape(v) {
				changed = true
			}
		}
	}
	for r, i := range candidates {
		if escaped[r] {
			continue
		}
		op := &o.ops[i]
		vs := &virtState{shape: op.Shape}
		if op.Opc == OpNewArray {
			nf, n := unpackNewArray(op.Aux)
			vs.isArray = true
			vs.numField = nf
			vs.fields = make([]Ref, nf)
			vs.elems = make([]Ref, n)
		} else {
			vs.numField = int(op.Aux)
			vs.fields = make([]Ref, op.Aux)
		}
		nilRef := RefNone
		for j := range vs.fields {
			vs.fields[j] = nilRef
		}
		for j := range vs.elems {
			vs.elems[j] = nilRef
		}
		o.virtual[r] = vs
	}
}

func isCandidate(candidates map[Ref]int, r Ref) bool {
	_, ok := candidates[r]
	return ok
}

// forward is the main rewrite walk.
func (o *optimizer) forward() {
	for i := range o.ops {
		op := &o.ops[i]
		// Apply substitutions to operands.
		op.A = o.resolve(op.A)
		op.B = o.resolve(op.B)
		op.C = o.resolve(op.C)
		for j := range op.Args {
			op.Args[j] = o.resolve(op.Args[j])
		}
		if op.Resume != nil {
			o.rewriteResume(op.Resume)
		}

		switch {
		case op.Opc.IsGuard():
			o.forwardGuard(i, op)
		case op.Opc == OpNewWithVtable, op.Opc == OpNewArray:
			if _, ok := o.virtual[op.Res]; ok {
				o.removed[i] = true
			} else if o.cfg.CSE {
				o.invalidateNothing()
			}
		case op.Opc == OpGetfieldGC:
			o.forwardGetfield(i, op)
		case op.Opc == OpSetfieldGC:
			o.forwardSetfield(i, op)
		case op.Opc == OpGetarrayitemGC:
			o.forwardGetelem(i, op)
		case op.Opc == OpSetarrayitemGC:
			o.forwardSetelem(i, op)
		case op.Opc == OpArraylenGC:
			if vs, ok := o.virtual[op.A]; ok {
				o.subst[op.Res] = o.internConst(heap.IntVal(int64(len(vs.elems))))
				o.removed[i] = true
			} else if o.cfg.CSE {
				if prev, ok := o.lenCache[op.A]; ok {
					o.subst[op.Res] = prev
					o.removed[i] = true
				} else {
					o.lenCache[op.A] = op.Res
				}
			}
		case op.Opc.IsCall():
			if o.cfg.CSE {
				o.fieldCache = map[fieldKey]Ref{}
				o.elemCache = map[elemKey]Ref{}
				o.lenCache = map[Ref]Ref{}
			}
		case op.Opc.Pure() && o.cfg.Fold:
			o.foldPure(i, op)
		}

		// Result-type inference: arithmetic results have statically
		// known classes, so later guard_class on them is redundant
		// (PyPy's boxes carry known types through the optimizer).
		if o.cfg.Guards && !o.removed[i] && op.Res != RefNone {
			if sh := resultShape(op.Opc); sh != nil {
				o.knownClass[op.Res] = sh
			}
		}
	}
}

// resultShape returns the statically known class of an op's result, or nil.
func resultShape(opc Opcode) *heap.Shape {
	switch opc {
	case OpIntAdd, OpIntSub, OpIntMul, OpIntFloorDiv, OpIntMod,
		OpIntAnd, OpIntOr, OpIntXor, OpIntLshift, OpIntRshift, OpIntNeg,
		OpIntAddOvf, OpIntSubOvf, OpIntMulOvf, OpCastFloatToInt,
		OpArraylenGC, OpStrlen, OpUnicodelen, OpStrgetitem, OpUnicodegetitem:
		return ShapeIntKind
	case OpFloatAdd, OpFloatSub, OpFloatMul, OpFloatTruediv, OpFloatNeg,
		OpFloatAbs, OpCastIntToFloat:
		return ShapeFloatKind
	case OpIntLt, OpIntLe, OpIntEq, OpIntNe, OpIntGt, OpIntGe, OpIntIsTrue,
		OpFloatLt, OpFloatLe, OpFloatEq, OpFloatNe, OpFloatGt, OpFloatGe,
		OpPtrEq, OpPtrNe:
		return ShapeBoolKind
	}
	return nil
}

func (o *optimizer) invalidateNothing() {}

func (o *optimizer) forwardGuard(i int, op *Op) {
	// Guards over allocation-removed objects MUST be removed (their
	// registers are never materialized); this is correctness, not an
	// optimization, so it runs regardless of cfg.Guards.
	if vs, ok := o.virtual[op.A]; ok {
		switch op.Opc {
		case OpGuardClass:
			if vs.shape != op.Shape {
				panic("mtjit: guard_class on virtual with mismatched shape")
			}
			o.removed[i] = true
			return
		case OpGuardNonnull:
			o.removed[i] = true
			return
		}
	}
	if !o.cfg.Guards {
		return
	}
	switch op.Opc {
	case OpGuardClass:
		if op.A.IsConst() {
			o.removed[i] = true // constants have a compile-time class
			return
		}
		if sh, ok := o.knownClass[op.A]; ok && sh == op.Shape {
			o.removed[i] = true
			return
		}
		o.knownClass[op.A] = op.Shape
		o.nonnull[op.A] = true
	case OpGuardNonnull:
		if _, ok := o.constVal(op.A); ok {
			o.removed[i] = true
			return
		}
		if o.nonnull[op.A] {
			o.removed[i] = true
			return
		}
		if _, ok := o.virtual[op.A]; ok {
			o.removed[i] = true
			return
		}
		o.nonnull[op.A] = true
	case OpGuardIsnull:
		if _, ok := o.constVal(op.A); ok {
			o.removed[i] = true
		}
	case OpGuardTrue, OpGuardFalse:
		if _, ok := o.constVal(op.A); ok {
			o.removed[i] = true
			return
		}
		want := op.Opc == OpGuardTrue
		if got, ok := o.knownTruth[op.A]; ok && got == want {
			o.removed[i] = true
			return
		}
		o.knownTruth[op.A] = want
	case OpGuardValue:
		if _, ok := o.constVal(op.A); ok {
			o.removed[i] = true
			return
		}
		if o.knownValue[op.A] {
			o.removed[i] = true
			return
		}
		o.knownValue[op.A] = true
	}
}

func (o *optimizer) forwardGetfield(i int, op *Op) {
	if vs, ok := o.virtual[op.A]; ok {
		f := vs.fields[op.Aux]
		if f == RefNone {
			f = o.internConst(heap.Nil)
		}
		o.subst[op.Res] = f
		o.removed[i] = true
		return
	}
	if !o.cfg.CSE {
		return
	}
	k := fieldKey{obj: op.A, idx: op.Aux}
	if prev, ok := o.fieldCache[k]; ok {
		o.subst[op.Res] = prev
		o.removed[i] = true
		return
	}
	o.fieldCache[k] = op.Res
}

func (o *optimizer) forwardSetfield(i int, op *Op) {
	if vs, ok := o.virtual[op.A]; ok {
		vs.fields[op.Aux] = op.B
		o.removed[i] = true
		return
	}
	if !o.cfg.CSE {
		return
	}
	// Invalidate aliasing reads of the same field index on other
	// objects; forward this store on the same object.
	for k := range o.fieldCache {
		if k.idx == op.Aux && k.obj != op.A {
			delete(o.fieldCache, k)
		}
	}
	o.fieldCache[fieldKey{obj: op.A, idx: op.Aux}] = op.B
}

func (o *optimizer) forwardGetelem(i int, op *Op) {
	if vs, ok := o.virtual[op.A]; ok {
		if idx, ok2 := o.constVal(op.B); ok2 && idx.Kind == heap.KindInt &&
			idx.I >= 0 && int(idx.I) < len(vs.elems) {
			e := vs.elems[idx.I]
			if e == RefNone {
				e = o.internConst(heap.Nil)
			}
			o.subst[op.Res] = e
			o.removed[i] = true
			return
		}
		// Virtual indexed by a non-constant: should have escaped.
		panic("mtjit: virtual array with dynamic index survived escape analysis")
	}
	if !o.cfg.CSE {
		return
	}
	k := elemKey{obj: op.A, idx: op.B}
	if prev, ok := o.elemCache[k]; ok {
		o.subst[op.Res] = prev
		o.removed[i] = true
		return
	}
	o.elemCache[k] = op.Res
}

func (o *optimizer) forwardSetelem(i int, op *Op) {
	if vs, ok := o.virtual[op.A]; ok {
		if idx, ok2 := o.constVal(op.B); ok2 && idx.Kind == heap.KindInt &&
			idx.I >= 0 && int(idx.I) < len(vs.elems) {
			vs.elems[idx.I] = op.C
			o.removed[i] = true
			return
		}
		panic("mtjit: virtual array with dynamic index survived escape analysis")
	}
	if !o.cfg.CSE {
		return
	}
	o.elemCache = map[elemKey]Ref{}
	o.elemCache[elemKey{obj: op.A, idx: op.B}] = op.C
}

func (o *optimizer) foldPure(i int, op *Op) {
	switch op.Opc {
	case OpIntAddOvf, OpIntSubOvf, OpIntMulOvf:
		return // paired with a guard; leave alone
	}
	va, okA := o.constVal(op.A)
	if !okA {
		return
	}
	var res heap.Value
	if isBinary(op.Opc) {
		vb, okB := o.constVal(op.B)
		if !okB {
			return
		}
		r, ok := evalPureBin(op.Opc, va, vb)
		if !ok {
			return
		}
		res = r
	} else {
		r, ok := evalPureUn(op.Opc, va)
		if !ok {
			return
		}
		res = r
	}
	o.subst[op.Res] = o.internConst(res)
	o.removed[i] = true
}

func isBinary(opc Opcode) bool {
	switch opc {
	case OpIntNeg, OpFloatNeg, OpFloatAbs, OpCastIntToFloat, OpCastFloatToInt, OpSameAs, OpIntIsTrue:
		return false
	}
	return true
}

// rewriteResume applies substitutions to a resume snapshot and attaches
// virtual descriptors for allocation-removed objects it references.
func (o *optimizer) rewriteResume(r *ResumeState) {
	var virtRefs []Ref
	seen := map[Ref]bool{}
	var noteVirtual func(ref Ref)
	noteVirtual = func(ref Ref) {
		if _, ok := o.virtual[ref]; !ok || seen[ref] {
			return
		}
		seen[ref] = true
		virtRefs = append(virtRefs, ref)
		vs := o.virtual[ref]
		for _, f := range vs.fields {
			if f != RefNone {
				noteVirtual(o.resolve(f))
			}
		}
		for _, e := range vs.elems {
			if e != RefNone {
				noteVirtual(o.resolve(e))
			}
		}
	}
	for fi := range r.Frames {
		f := &r.Frames[fi]
		for si := range f.Slots {
			f.Slots[si] = o.resolve(f.Slots[si])
			noteVirtual(f.Slots[si])
		}
	}
	r.Virtuals = r.Virtuals[:0]
	for _, vr := range virtRefs {
		vs := o.virtual[vr]
		vd := VirtualDesc{
			Ref:       vr,
			Shape:     vs.shape,
			NumFields: vs.numField,
			ArrayLen:  -1,
		}
		if vs.isArray {
			vd.ArrayLen = len(vs.elems)
		}
		vd.FieldRefs = make([]Ref, len(vs.fields))
		for j, f := range vs.fields {
			if f == RefNone {
				vd.FieldRefs[j] = o.internConst(heap.Nil)
			} else {
				vd.FieldRefs[j] = o.resolve(f)
			}
		}
		vd.ElemRefs = make([]Ref, len(vs.elems))
		for j, e := range vs.elems {
			if e == RefNone {
				vd.ElemRefs[j] = o.internConst(heap.Nil)
			} else {
				vd.ElemRefs[j] = o.resolve(e)
			}
		}
		r.Virtuals = append(r.Virtuals, vd)
	}
}

// dce removes pure and read-only ops whose results are never used.
func (o *optimizer) dce() {
	used := map[Ref]bool{}
	use := func(r Ref) {
		if r > 0 {
			used[r] = true
		}
	}
	for i := len(o.ops) - 1; i >= 0; i-- {
		if o.removed[i] {
			continue
		}
		op := &o.ops[i]
		removable := op.Opc.Pure() ||
			op.Opc == OpGetfieldGC || op.Opc == OpGetarrayitemGC ||
			op.Opc == OpArraylenGC || op.Opc == OpStrgetitem ||
			op.Opc == OpStrlen || op.Opc == OpUnicodegetitem ||
			op.Opc == OpUnicodelen
		if removable && op.Res != RefNone && !used[op.Res] {
			o.removed[i] = true
			continue
		}
		use(op.A)
		use(op.B)
		use(op.C)
		for _, a := range op.Args {
			use(a)
		}
		if op.Resume != nil {
			for fi := range op.Resume.Frames {
				for _, s := range op.Resume.Frames[fi].Slots {
					use(s)
				}
			}
			for _, vd := range op.Resume.Virtuals {
				for _, f := range vd.FieldRefs {
					use(f)
				}
				for _, e := range vd.ElemRefs {
					use(e)
				}
			}
		}
	}
}
