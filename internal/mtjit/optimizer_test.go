package mtjit

import (
	"testing"
	"testing/quick"

	"metajit/internal/heap"
)

// buildTrace assembles a raw trace for optimizer unit tests: entry slots
// feed registers 1..n, consts are provided, ops are pre-numbered.
func buildTrace(nInputs int, consts []heap.Value, ops []Op) *Trace {
	slots := make([]Ref, nInputs)
	for i := range slots {
		slots[i] = Ref(i + 1)
	}
	maxReg := Ref(nInputs + 1)
	for i := range ops {
		if ops[i].Res == 0 {
			ops[i].Res = RefNone
		}
		if ops[i].Res != RefNone && ops[i].Res >= maxReg {
			maxReg = ops[i].Res + 1
		}
	}
	return &Trace{
		Entry:   &ResumeState{Frames: []FrameSnap{{Slots: slots, NumLocals: nInputs}}},
		Ops:     ops,
		Consts:  consts,
		NumRegs: int(maxReg),
	}
}

func opcodes(t *Trace) []Opcode {
	out := make([]Opcode, len(t.Ops))
	for i := range t.Ops {
		out[i] = t.Ops[i].Opc
	}
	return out
}

func TestFoldConstantArithmetic(t *testing.T) {
	// r2 = 2 + 3; jump(r2)
	tr := buildTrace(1, []heap.Value{heap.IntVal(2), heap.IntVal(3)}, []Op{
		{Opc: OpIntAdd, A: ConstRef(0), B: ConstRef(1), Res: 2},
		{Opc: OpJump, Args: []Ref{2}},
	})
	Optimize(tr, OptConfig{Fold: true, DCE: true})
	if len(tr.Ops) != 1 || tr.Ops[0].Opc != OpJump {
		t.Fatalf("fold failed: %v", opcodes(tr))
	}
	arg := tr.Ops[0].Args[0]
	if !arg.IsConst() || tr.Consts[arg.ConstIndex()].I != 5 {
		t.Fatalf("jump arg not folded to 5: %v", arg)
	}
}

func TestRedundantGuardClassRemoved(t *testing.T) {
	sh := &heap.Shape{Name: "T", ID: 9}
	tr := buildTrace(1, nil, []Op{
		{Opc: OpGuardClass, A: 1, Shape: sh, Resume: emptyResume()},
		{Opc: OpGuardClass, A: 1, Shape: sh, Resume: emptyResume()},
		{Opc: OpGuardNonnull, A: 1, Resume: emptyResume()},
		{Opc: OpJump, Args: []Ref{1}},
	})
	Optimize(tr, OptConfig{Guards: true})
	n := 0
	for _, op := range tr.Ops {
		if op.Opc.IsGuard() {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want 1 surviving guard, got %d: %v", n, opcodes(tr))
	}
}

func TestResultTypeInferenceKillsGuards(t *testing.T) {
	// r2 = r1 + r1 (int); guard_class(r2, Int) is redundant.
	tr := buildTrace(1, nil, []Op{
		{Opc: OpIntAdd, A: 1, B: 1, Res: 2},
		{Opc: OpGuardClass, A: 2, Shape: ShapeIntKind, Resume: emptyResume()},
		{Opc: OpJump, Args: []Ref{2}},
	})
	Optimize(tr, OptConfig{Guards: true})
	for _, op := range tr.Ops {
		if op.Opc == OpGuardClass {
			t.Fatalf("guard on inferred int result survived")
		}
	}
}

func TestCSEForwardsGetfield(t *testing.T) {
	tr := buildTrace(1, nil, []Op{
		{Opc: OpGetfieldGC, A: 1, Aux: 0, Res: 2},
		{Opc: OpGetfieldGC, A: 1, Aux: 0, Res: 3}, // duplicate
		{Opc: OpIntAdd, A: 2, B: 3, Res: 4},
		{Opc: OpJump, Args: []Ref{4}},
	})
	Optimize(tr, OptConfig{CSE: true, DCE: true})
	loads := 0
	for _, op := range tr.Ops {
		if op.Opc == OpGetfieldGC {
			loads++
		}
	}
	if loads != 1 {
		t.Fatalf("CSE left %d getfields: %v", loads, opcodes(tr))
	}
	// The add must now use r2 twice.
	for _, op := range tr.Ops {
		if op.Opc == OpIntAdd && (op.A != 2 || op.B != 2) {
			t.Fatalf("add args not forwarded: %+v", op)
		}
	}
}

func TestCSEInvalidatedBySetfield(t *testing.T) {
	tr := buildTrace(2, nil, []Op{
		{Opc: OpGetfieldGC, A: 1, Aux: 0, Res: 3},
		{Opc: OpSetfieldGC, A: 2, B: 3, Aux: 0}, // may alias r1
		{Opc: OpGetfieldGC, A: 1, Aux: 0, Res: 4},
		{Opc: OpJump, Args: []Ref{3, 4}},
	})
	Optimize(tr, OptConfig{CSE: true, DCE: true})
	loads := 0
	for _, op := range tr.Ops {
		if op.Opc == OpGetfieldGC {
			loads++
		}
	}
	if loads != 2 {
		t.Fatalf("aliasing store must invalidate CSE; %d loads survive", loads)
	}
}

func TestEscapeToCallPreventsVirtual(t *testing.T) {
	sh := &heap.Shape{Name: "T", ID: 3}
	tr := buildTrace(1, nil, []Op{
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 2},
		{Opc: OpSetfieldGC, A: 2, B: 1, Aux: 0},
		{Opc: OpCall, Args: []Ref{2}, Res: 3,
			Thunk: func(a []heap.Value) heap.Value { return heap.Nil }},
		{Opc: OpJump, Args: []Ref{1}},
	})
	Optimize(tr, AllOpts())
	found := false
	for _, op := range tr.Ops {
		if op.Opc == OpNewWithVtable {
			found = true
		}
	}
	if !found {
		t.Fatalf("allocation passed to a call must not be removed")
	}
}

func TestNonEscapingAllocationRemoved(t *testing.T) {
	sh := &heap.Shape{Name: "T", ID: 4}
	tr := buildTrace(1, nil, []Op{
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 2},
		{Opc: OpSetfieldGC, A: 2, B: 1, Aux: 0},
		{Opc: OpGetfieldGC, A: 2, Aux: 0, Res: 3},
		{Opc: OpJump, Args: []Ref{3}},
	})
	Optimize(tr, AllOpts())
	for _, op := range tr.Ops {
		if op.Opc == OpNewWithVtable || op.Opc == OpSetfieldGC || op.Opc == OpGetfieldGC {
			t.Fatalf("virtual not fully removed: %v", opcodes(tr))
		}
	}
	if tr.Ops[0].Opc != OpJump || tr.Ops[0].Args[0] != 1 {
		t.Fatalf("field read not forwarded to input: %+v", tr.Ops[0])
	}
}

func TestNestedVirtualEscapesThroughRead(t *testing.T) {
	// outer.f = inner; x = outer.f; ptr_eq(x, const) -> inner must NOT be
	// virtual (the regression behind the binarytrees miscompile).
	sh := &heap.Shape{Name: "T", ID: 5}
	tr := buildTrace(1, []heap.Value{heap.Nil}, []Op{
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 2}, // inner
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 3}, // outer
		{Opc: OpSetfieldGC, A: 3, B: 2, Aux: 0},
		{Opc: OpGetfieldGC, A: 3, Aux: 0, Res: 4},
		{Opc: OpPtrEq, A: 4, B: ConstRef(0), Res: 5},
		{Opc: OpJump, Args: []Ref{5}},
	})
	Optimize(tr, AllOpts())
	news := 0
	for _, op := range tr.Ops {
		if op.Opc == OpNewWithVtable {
			news++
		}
	}
	if news == 0 {
		t.Fatalf("inner allocation compared by identity was removed: %v", opcodes(tr))
	}
}

func TestVirtualInResumeGetsDescriptor(t *testing.T) {
	sh := &heap.Shape{Name: "T", ID: 6}
	resume := &ResumeState{Frames: []FrameSnap{{Slots: []Ref{2}, NumLocals: 1}}}
	tr := buildTrace(1, nil, []Op{
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 2},
		{Opc: OpSetfieldGC, A: 2, B: 1, Aux: 0},
		{Opc: OpGuardTrue, A: 1, Resume: resume, GuardID: 1},
		{Opc: OpJump, Args: []Ref{1}},
	})
	Optimize(tr, AllOpts())
	var g *Op
	for i := range tr.Ops {
		if tr.Ops[i].Opc == OpGuardTrue {
			g = &tr.Ops[i]
		}
	}
	if g == nil {
		t.Fatalf("guard disappeared")
	}
	if len(g.Resume.Virtuals) != 1 {
		t.Fatalf("resume lacks virtual descriptor: %+v", g.Resume)
	}
	vd := g.Resume.Virtuals[0]
	if vd.Shape != sh || len(vd.FieldRefs) != 1 || vd.FieldRefs[0] != 1 {
		t.Fatalf("descriptor wrong: %+v", vd)
	}
}

func TestDCEDropsUnusedPureOps(t *testing.T) {
	tr := buildTrace(1, nil, []Op{
		{Opc: OpIntAdd, A: 1, B: 1, Res: 2}, // unused
		{Opc: OpIntMul, A: 1, B: 1, Res: 3},
		{Opc: OpJump, Args: []Ref{3}},
	})
	Optimize(tr, OptConfig{DCE: true})
	for _, op := range tr.Ops {
		if op.Opc == OpIntAdd {
			t.Fatalf("dead add survived")
		}
	}
}

func emptyResume() *ResumeState {
	return &ResumeState{Frames: []FrameSnap{{Slots: []Ref{1}, NumLocals: 1}}}
}

// Property: optimization never changes the number of non-pure,
// non-removable effects (calls, stores to escaping objects, jumps).
func TestOptimizePreservesCalls(t *testing.T) {
	f := func(nAdds uint8) bool {
		ops := []Op{}
		reg := Ref(2)
		for i := 0; i < int(nAdds%20); i++ {
			ops = append(ops, Op{Opc: OpIntAdd, A: 1, B: 1, Res: reg})
			reg++
		}
		ops = append(ops,
			Op{Opc: OpCall, Args: []Ref{1}, Res: reg,
				Thunk: func(a []heap.Value) heap.Value { return heap.Nil }},
			Op{Opc: OpJump, Args: []Ref{1}})
		tr := buildTrace(1, nil, ops)
		Optimize(tr, AllOpts())
		calls, jumps := 0, 0
		for _, op := range tr.Ops {
			switch op.Opc {
			case OpCall:
				calls++
			case OpJump:
				jumps++
			}
		}
		return calls == 1 && jumps == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
