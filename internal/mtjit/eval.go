package mtjit

import (
	"math"

	"metajit/internal/heap"
)

// evalPureBin evaluates a pure binary IR op on constant values. Shared by
// the optimizer (constant folding) and the executor.
func evalPureBin(opc Opcode, a, b heap.Value) (heap.Value, bool) {
	switch opc {
	case OpIntAdd:
		return heap.IntVal(a.I + b.I), true
	case OpIntSub:
		return heap.IntVal(a.I - b.I), true
	case OpIntMul:
		return heap.IntVal(a.I * b.I), true
	case OpIntFloorDiv:
		if b.I == 0 {
			return heap.Nil, false
		}
		return heap.IntVal(floorDiv(a.I, b.I)), true
	case OpIntMod:
		if b.I == 0 {
			return heap.Nil, false
		}
		return heap.IntVal(floorMod(a.I, b.I)), true
	case OpIntAnd:
		return heap.IntVal(a.I & b.I), true
	case OpIntOr:
		return heap.IntVal(a.I | b.I), true
	case OpIntXor:
		return heap.IntVal(a.I ^ b.I), true
	case OpIntLshift:
		return heap.IntVal(a.I << uint(b.I&63)), true
	case OpIntRshift:
		return heap.IntVal(a.I >> uint(b.I&63)), true
	case OpIntLt, OpIntLe, OpIntEq, OpIntNe, OpIntGt, OpIntGe:
		return heap.BoolVal(intCmp(opc, a.I, b.I)), true
	case OpFloatAdd, OpFloatSub, OpFloatMul, OpFloatTruediv:
		return heap.FloatVal(floatArith(opc, a.F, b.F)), true
	case OpFloatLt, OpFloatLe, OpFloatEq, OpFloatNe, OpFloatGt, OpFloatGe:
		return heap.BoolVal(floatCmp(opc, a.F, b.F)), true
	case OpPtrEq:
		return heap.BoolVal(a.Eq(b)), true
	case OpPtrNe:
		return heap.BoolVal(!a.Eq(b)), true
	}
	return heap.Nil, false
}

// evalPureUn evaluates a pure unary IR op.
func evalPureUn(opc Opcode, a heap.Value) (heap.Value, bool) {
	switch opc {
	case OpIntNeg:
		return heap.IntVal(-a.I), true
	case OpIntIsTrue:
		return heap.BoolVal(a.I != 0), true
	case OpFloatNeg:
		return heap.FloatVal(-a.F), true
	case OpFloatAbs:
		return heap.FloatVal(math.Abs(a.F)), true
	case OpCastIntToFloat:
		return heap.FloatVal(float64(a.I)), true
	case OpCastFloatToInt:
		return heap.IntVal(int64(a.F)), true
	case OpSameAs:
		return a, true
	}
	return heap.Nil, false
}
