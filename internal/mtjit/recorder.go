package mtjit

import (
	"metajit/internal/aot"
	"metajit/internal/core"
	"metajit/internal/heap"
	"metajit/internal/isa"
)

// SnapshotFn captures the current guest frame chain (from the trace-root
// frame to the innermost frame) as resume metadata: for every frame, the
// guest pc and the IR refs currently sitting in each slot.
type SnapshotFn func() []FrameSnap

// FrameAdapter is the engine's view of one guest frame. Guest VMs
// implement it so the engine can seed input refs when tracing begins and
// read/write slots when traces enter and exit.
type FrameAdapter interface {
	CodeID() uint32
	GuestPC() int
	NumLocals() int
	NumSlots() int
	ReadSlot(i int) heap.Value
	SetSlotRef(i int, r Ref)
	SlotRef(i int) Ref
	// IsCtor reports whether the frame is a constructor call whose
	// return value is discarded.
	IsCtor() bool
}

// AbortReason classifies why a recording was abandoned.
type AbortReason uint8

// Abort reasons (PyPy's ABORT_TOO_LONG etc.).
const (
	AbortNone AbortReason = iota
	AbortTooLong
	AbortLeftFrame
	AbortForced
)

type constKey struct {
	k heap.Kind
	i int64
	f float64
	o *heap.Obj
}

// TracingMachine is the recording meta-interpreter: it executes guest
// operations concretely (delegating to a DirectMachine) while recording
// the corresponding JIT IR and emitting the much higher per-operation cost
// of meta-interpretation into the tracing phase.
type TracingMachine struct {
	d   *DirectMachine
	eng *Engine

	// UseUnicodeOps selects unicode* IR nodes for string item/length
	// operations (the Python guest's strings are unicode; the Scheme
	// guest's are bytes).
	UseUnicodeOps bool

	ops      []Op
	consts   []heap.Value
	constMap map[constKey]Ref
	nextReg  Ref

	snapshot SnapshotFn
	entry    *ResumeState
	rootKey  GreenKey
	bridge   bool
	fromGrd  uint32 // guard this bridge hangs off
	bcCount  int

	aborted bool
	reason  AbortReason

	// deps are the names of runtime assumptions (constant-folded
	// globals) this recording relies on; install registers them so a
	// later mutation invalidates the trace.
	deps map[string]bool

	recSite isa.Site
}

func newTracingMachine(d *DirectMachine, eng *Engine) *TracingMachine {
	return &TracingMachine{
		d:        d,
		eng:      eng,
		constMap: make(map[constKey]Ref),
		nextReg:  1, // register 0 is the RefUnused sentinel
		recSite:  eng.RT.PC.Site(),
	}
}

var _ Machine = (*TracingMachine)(nil)

// Heap implements Machine.
func (m *TracingMachine) Heap() *heap.Heap { return m.d.H }

// Runtime implements Machine.
func (m *TracingMachine) Runtime() *aot.Runtime { return m.d.RT }

// Tracing implements Machine.
func (m *TracingMachine) Tracing() bool { return true }

// recCost emits the meta-interpretation overhead of recording one IR op:
// the meta-interpreter allocates boxes, appends to the operation list, and
// dispatches on the operation — an order of magnitude over plain
// interpretation.
func (m *TracingMachine) recCost() {
	s := m.d.S
	s.Ops(isa.ALU, 24)
	s.Ops(isa.Load, 9)
	s.Ops(isa.Store, 5)
	s.Branch(m.recSite.PC(), len(m.ops)&7 == 0)
	s.Indirect(m.recSite.PC()+4, uint64(len(m.ops)%23)*64+isa.RegionVMText)
}

// ref returns the IR ref of a TV, interning values that flowed in from
// outside the recording as trace constants.
func (m *TracingMachine) ref(a TV) Ref {
	if a.R != RefNone {
		return a.R
	}
	return m.intern(a.V)
}

func (m *TracingMachine) intern(v heap.Value) Ref {
	k := constKey{k: v.Kind}
	switch v.Kind {
	case heap.KindInt, heap.KindBool:
		k.i = v.I
	case heap.KindFloat:
		k.f = v.F
	case heap.KindRef:
		k.o = v.O
	}
	if r, ok := m.constMap[k]; ok {
		return r
	}
	m.consts = append(m.consts, v)
	r := ConstRef(len(m.consts) - 1)
	m.constMap[k] = r
	return r
}

func (m *TracingMachine) newReg() Ref {
	r := m.nextReg
	m.nextReg++
	return r
}

// rec appends an op, assigning a result register if withRes, and returns
// the result ref.
func (m *TracingMachine) rec(op Op, withRes bool) Ref {
	if withRes {
		op.Res = m.newReg()
	} else {
		op.Res = RefNone
	}
	m.ops = append(m.ops, op)
	m.recCost()
	if len(m.ops) > m.eng.TraceLimit && !m.aborted {
		m.aborted = true
		m.reason = AbortTooLong
	}
	return op.Res
}

func (m *TracingMachine) captureResume() *ResumeState {
	return &ResumeState{Frames: m.snapshot()}
}

// guard records a guard op carrying a fresh resume snapshot. The guard
// sits inside the bytecode currently being recorded (its Dispatch
// already bumped bcCount), and a failure resumes the interpreter at
// that bytecode's start, so the segment's exact retired work at this
// guard excludes the current bytecode.
func (m *TracingMachine) guard(op Op) {
	op.Resume = m.captureResume()
	op.GuardID = m.eng.nextGuardID()
	if op.BCProgress = m.bcCount - 1; op.BCProgress < 0 {
		op.BCProgress = 0
	}
	m.rec(op, false)
	// Snapshot capture cost (resume-data construction).
	n := 0
	for _, f := range op.Resume.Frames {
		n += len(f.Slots)
	}
	m.d.S.Ops(isa.ALU, 4+n)
	m.d.S.Ops(isa.Store, 2+n/2)
}

// Dispatch implements Machine: meta-interpreter dispatch is far heavier
// than plain dispatch (the meta-interpreter interprets the interpreter).
func (m *TracingMachine) Dispatch(site uint64, target uint64) {
	s := m.d.S
	s.Annot(core.TagDispatch, 1)
	s.Ops(isa.ALU, 34)
	s.Ops(isa.Load, 12)
	s.Ops(isa.Store, 4)
	s.Indirect(site, target)
	s.Indirect(m.recSite.PC()+8, target+8)
	m.bcCount++
}

// Const implements Machine.
func (m *TracingMachine) Const(v heap.Value) TV {
	return TV{V: v, R: m.intern(v)}
}

// KindOf implements Machine: the interpreter's type dispatch becomes a
// class guard in the trace.
func (m *TracingMachine) KindOf(a TV) heap.Kind {
	k := m.d.KindOf(a)
	r := m.ref(a)
	if !r.IsConst() {
		sh := KindShape(k)
		if k == heap.KindRef {
			sh = a.V.O.Shape
		}
		m.guard(Op{Opc: OpGuardClass, A: r, Shape: sh})
	}
	return k
}

// ShapeOf implements Machine.
func (m *TracingMachine) ShapeOf(a TV) *heap.Shape {
	sh := m.d.ShapeOf(a)
	r := m.ref(a)
	if !r.IsConst() {
		m.guard(Op{Opc: OpGuardClass, A: r, Shape: sh})
	}
	return sh
}

// IsNil implements Machine.
func (m *TracingMachine) IsNil(a TV) bool {
	isNil := m.d.IsNil(a)
	r := m.ref(a)
	if !r.IsConst() {
		if isNil {
			m.guard(Op{Opc: OpGuardIsnull, A: r})
		} else {
			m.guard(Op{Opc: OpGuardNonnull, A: r})
		}
	}
	return isNil
}

// Truth implements Machine: a guest branch becomes guard_true/guard_false.
func (m *TracingMachine) Truth(a TV, site uint64) bool {
	t := m.d.Truth(a, site)
	r := m.ref(a)
	if !r.IsConst() {
		if t {
			m.guard(Op{Opc: OpGuardTrue, A: r})
		} else {
			m.guard(Op{Opc: OpGuardFalse, A: r})
		}
	}
	return t
}

// PromoteInt implements Machine: RPython's promote hint becomes
// guard_value, making the runtime value a trace constant.
func (m *TracingMachine) PromoteInt(a TV) int64 {
	v := m.d.PromoteInt(a)
	r := m.ref(a)
	if !r.IsConst() {
		m.guard(Op{Opc: OpGuardValue, A: r, Aux: v})
	}
	return v
}

// PromoteRef implements Machine.
func (m *TracingMachine) PromoteRef(a TV) *heap.Obj {
	o := m.d.PromoteRef(a)
	r := m.ref(a)
	if !r.IsConst() {
		m.guard(Op{Opc: OpGuardValue, A: r, Aux: int64(o.UID())})
	}
	return o
}

func (m *TracingMachine) binop(opc Opcode, a, b TV, v heap.Value) TV {
	r := m.rec(Op{Opc: opc, A: m.ref(a), B: m.ref(b)}, true)
	return TV{V: v, R: r}
}

func (m *TracingMachine) unop(opc Opcode, a TV, v heap.Value) TV {
	r := m.rec(Op{Opc: opc, A: m.ref(a)}, true)
	return TV{V: v, R: r}
}

// IntAdd implements Machine.
func (m *TracingMachine) IntAdd(a, b TV) TV { return m.binop(OpIntAdd, a, b, m.d.IntAdd(a, b).V) }

// IntSub implements Machine.
func (m *TracingMachine) IntSub(a, b TV) TV { return m.binop(OpIntSub, a, b, m.d.IntSub(a, b).V) }

// IntMul implements Machine.
func (m *TracingMachine) IntMul(a, b TV) TV { return m.binop(OpIntMul, a, b, m.d.IntMul(a, b).V) }

func (m *TracingMachine) intOvf(opc Opcode, a, b TV, v heap.Value, ovf bool) (TV, bool) {
	res := m.binop(opc, a, b, v)
	aux := int64(0)
	if ovf {
		aux = 1
	}
	m.guard(Op{Opc: OpGuardNoOverflow, Aux: aux})
	return res, ovf
}

// IntAddOvf implements Machine.
func (m *TracingMachine) IntAddOvf(a, b TV) (TV, bool) {
	v, ovf := m.d.IntAddOvf(a, b)
	return m.intOvf(OpIntAddOvf, a, b, v.V, ovf)
}

// IntSubOvf implements Machine.
func (m *TracingMachine) IntSubOvf(a, b TV) (TV, bool) {
	v, ovf := m.d.IntSubOvf(a, b)
	return m.intOvf(OpIntSubOvf, a, b, v.V, ovf)
}

// IntMulOvf implements Machine.
func (m *TracingMachine) IntMulOvf(a, b TV) (TV, bool) {
	v, ovf := m.d.IntMulOvf(a, b)
	return m.intOvf(OpIntMulOvf, a, b, v.V, ovf)
}

// IntFloorDiv implements Machine.
func (m *TracingMachine) IntFloorDiv(a, b TV) TV {
	return m.binop(OpIntFloorDiv, a, b, m.d.IntFloorDiv(a, b).V)
}

// IntMod implements Machine.
func (m *TracingMachine) IntMod(a, b TV) TV { return m.binop(OpIntMod, a, b, m.d.IntMod(a, b).V) }

// IntAnd implements Machine.
func (m *TracingMachine) IntAnd(a, b TV) TV { return m.binop(OpIntAnd, a, b, m.d.IntAnd(a, b).V) }

// IntOr implements Machine.
func (m *TracingMachine) IntOr(a, b TV) TV { return m.binop(OpIntOr, a, b, m.d.IntOr(a, b).V) }

// IntXor implements Machine.
func (m *TracingMachine) IntXor(a, b TV) TV { return m.binop(OpIntXor, a, b, m.d.IntXor(a, b).V) }

// IntLshift implements Machine.
func (m *TracingMachine) IntLshift(a, b TV) TV {
	return m.binop(OpIntLshift, a, b, m.d.IntLshift(a, b).V)
}

// IntRshift implements Machine.
func (m *TracingMachine) IntRshift(a, b TV) TV {
	return m.binop(OpIntRshift, a, b, m.d.IntRshift(a, b).V)
}

// IntNeg implements Machine.
func (m *TracingMachine) IntNeg(a TV) TV { return m.unop(OpIntNeg, a, m.d.IntNeg(a).V) }

// IntCmp implements Machine.
func (m *TracingMachine) IntCmp(opc Opcode, a, b TV) TV {
	return m.binop(opc, a, b, m.d.IntCmp(opc, a, b).V)
}

// FloatArith implements Machine.
func (m *TracingMachine) FloatArith(opc Opcode, a, b TV) TV {
	return m.binop(opc, a, b, m.d.FloatArith(opc, a, b).V)
}

// FloatCmp implements Machine.
func (m *TracingMachine) FloatCmp(opc Opcode, a, b TV) TV {
	return m.binop(opc, a, b, m.d.FloatCmp(opc, a, b).V)
}

// FloatNeg implements Machine.
func (m *TracingMachine) FloatNeg(a TV) TV { return m.unop(OpFloatNeg, a, m.d.FloatNeg(a).V) }

// IntToFloat implements Machine.
func (m *TracingMachine) IntToFloat(a TV) TV {
	return m.unop(OpCastIntToFloat, a, m.d.IntToFloat(a).V)
}

// FloatToInt implements Machine.
func (m *TracingMachine) FloatToInt(a TV) TV {
	return m.unop(OpCastFloatToInt, a, m.d.FloatToInt(a).V)
}

// NewObj implements Machine.
func (m *TracingMachine) NewObj(shape *heap.Shape, nFields int) TV {
	v := m.d.NewObj(shape, nFields)
	r := m.rec(Op{Opc: OpNewWithVtable, Shape: shape, Aux: int64(nFields)}, true)
	return TV{V: v.V, R: r}
}

// NewArray implements Machine.
func (m *TracingMachine) NewArray(shape *heap.Shape, nFields, n int) TV {
	v := m.d.NewArray(shape, nFields, n)
	r := m.rec(Op{Opc: OpNewArray, Shape: shape, Aux: packNewArray(nFields, n)}, true)
	return TV{V: v.V, R: r}
}

// packNewArray packs the field count and array length of new_array into Aux.
func packNewArray(nFields, n int) int64 { return int64(nFields)<<32 | int64(uint32(n)) }

func unpackNewArray(aux int64) (nFields, n int) {
	return int(aux >> 32), int(int32(uint32(aux)))
}

// GetField implements Machine.
func (m *TracingMachine) GetField(o TV, i int) TV {
	v := m.d.GetField(o, i)
	r := m.rec(Op{Opc: OpGetfieldGC, A: m.ref(o), Aux: int64(i)}, true)
	return TV{V: v.V, R: r}
}

// SetField implements Machine.
func (m *TracingMachine) SetField(o TV, i int, v TV) {
	m.d.SetField(o, i, v)
	m.rec(Op{Opc: OpSetfieldGC, A: m.ref(o), B: m.ref(v), Aux: int64(i)}, false)
}

// GetElem implements Machine.
func (m *TracingMachine) GetElem(o TV, i TV) TV {
	v := m.d.GetElem(o, i)
	r := m.rec(Op{Opc: OpGetarrayitemGC, A: m.ref(o), B: m.ref(i)}, true)
	return TV{V: v.V, R: r}
}

// SetElem implements Machine.
func (m *TracingMachine) SetElem(o TV, i TV, v TV) {
	m.d.SetElem(o, i, v)
	m.rec(Op{Opc: OpSetarrayitemGC, A: m.ref(o), B: m.ref(i), C: m.ref(v)}, false)
}

// ArrayLen implements Machine.
func (m *TracingMachine) ArrayLen(o TV) TV {
	v := m.d.ArrayLen(o)
	r := m.rec(Op{Opc: OpArraylenGC, A: m.ref(o)}, true)
	return TV{V: v.V, R: r}
}

// StrGetItem implements Machine.
func (m *TracingMachine) StrGetItem(o TV, i TV) TV {
	v := m.d.StrGetItem(o, i)
	opc := OpStrgetitem
	if m.UseUnicodeOps {
		opc = OpUnicodegetitem
	}
	r := m.rec(Op{Opc: opc, A: m.ref(o), B: m.ref(i)}, true)
	return TV{V: v.V, R: r}
}

// StrLen implements Machine.
func (m *TracingMachine) StrLen(o TV) TV {
	v := m.d.StrLen(o)
	opc := OpStrlen
	if m.UseUnicodeOps {
		opc = OpUnicodelen
	}
	r := m.rec(Op{Opc: opc, A: m.ref(o)}, true)
	return TV{V: v.V, R: r}
}

// PtrEq implements Machine.
func (m *TracingMachine) PtrEq(a, b TV) TV { return m.binop(OpPtrEq, a, b, m.d.PtrEq(a, b).V) }

// Annotate implements Machine: the annotation fires now and is recorded
// so it survives into the compiled trace (the optimizer never removes it).
func (m *TracingMachine) Annotate(tag core.Tag, arg uint64) {
	m.d.S.Annot(tag, arg)
	m.rec(Op{Opc: OpAnnot, Aux: int64(tag)<<32 | int64(uint32(arg))}, false)
}

// CallAOT implements Machine: records a residual call node.
func (m *TracingMachine) CallAOT(fn *aot.Func, thunk func(args []heap.Value) heap.Value, args ...TV) TV {
	refs := make([]Ref, len(args))
	for i, a := range args {
		refs[i] = m.ref(a)
	}
	v := m.d.CallAOT(fn, thunk, args...)
	opc := OpCall
	if fn.Src == aot.SrcInterp {
		opc = OpCallMayForce
	}
	r := m.rec(Op{Opc: opc, Fn: fn, Thunk: thunk, Args: refs}, true)
	return TV{V: v.V, R: r}
}

// GuestCall implements Machine: calls are inlined into the trace, so only
// the meta-interpreter's bookkeeping cost remains.
func (m *TracingMachine) GuestCall(site uint64) {
	m.d.S.Ops(isa.ALU, 12)
	m.d.S.Ops(isa.Store, 4)
}

// GuestReturn implements Machine.
func (m *TracingMachine) GuestReturn() {
	m.d.S.Ops(isa.ALU, 6)
	m.d.S.Ops(isa.Load, 3)
}

// DependOnGlobal records that the trace constant-folded the value bound
// to name: a guard_not_invalidated op is recorded (once per name per
// recording), and on install the trace registers as a dependent so a
// later store to name invalidates it (RPython's quasi-immutable field
// mechanism, applied to versioned module dicts).
func (m *TracingMachine) DependOnGlobal(name string) {
	if m.deps[name] {
		return
	}
	if m.deps == nil {
		m.deps = make(map[string]bool)
	}
	m.deps[name] = true
	m.guard(Op{Opc: OpGuardNotInvalidated})
}

// DependsOnGlobal reports whether the recording already constant-folded
// the named global. Guest VMs must abort the recording before storing to
// such a name: the recorded constant is already stale.
func (m *TracingMachine) DependsOnGlobal(name string) bool { return m.deps[name] }

// Abort abandons the recording with the given reason; the driver picks
// it up at the next merge point.
func (m *TracingMachine) Abort(reason AbortReason) {
	m.aborted = true
	m.reason = reason
}

// RefOf exposes the IR ref of a TV for snapshot construction, interning
// values that flowed in from outside the recording.
func (m *TracingMachine) RefOf(tv TV) Ref { return m.ref(tv) }

// BytecodesRecorded returns the guest bytecodes covered so far (one trace
// iteration's worth once the loop closes).
func (m *TracingMachine) BytecodesRecorded() int { return m.bcCount }

// Aborted reports whether the recording has been abandoned (e.g. trace too
// long); the driver should call AbortTrace and resume plain interpretation.
func (m *TracingMachine) Aborted() bool { return m.aborted }
