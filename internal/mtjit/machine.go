package mtjit

import (
	"metajit/internal/aot"
	"metajit/internal/core"
	"metajit/internal/heap"
	"metajit/internal/isa"
)

// TV is a traced value: the concrete guest value plus, while the
// meta-interpreter is recording, the IR ref that produced it. Guest
// interpreter frames hold TVs so the same evaluator code runs in plain
// interpretation, under the tracing meta-interpreter, and (indirectly)
// as compiled code.
type TV struct {
	V heap.Value
	R Ref
}

// Concrete wraps a value with no trace ref (plain interpretation).
func Concrete(v heap.Value) TV { return TV{V: v, R: RefNone} }

// Pseudo-shapes used by guard_class over unboxed kinds: RPython-level
// boxes all have classes; our unboxed values guard on a kind tag instead.
var (
	ShapeNilKind   = &heap.Shape{Name: "W_None", ID: 0xFFF0, VTableAddr: isa.RegionVMText + 0x70_0000}
	ShapeBoolKind  = &heap.Shape{Name: "W_Bool", ID: 0xFFF1, VTableAddr: isa.RegionVMText + 0x70_0100}
	ShapeIntKind   = &heap.Shape{Name: "W_Int", ID: 0xFFF2, VTableAddr: isa.RegionVMText + 0x70_0200}
	ShapeFloatKind = &heap.Shape{Name: "W_Float", ID: 0xFFF3, VTableAddr: isa.RegionVMText + 0x70_0300}
)

// KindShape maps an unboxed kind to its pseudo-shape.
func KindShape(k heap.Kind) *heap.Shape {
	switch k {
	case heap.KindNil:
		return ShapeNilKind
	case heap.KindBool:
		return ShapeBoolKind
	case heap.KindInt:
		return ShapeIntKind
	case heap.KindFloat:
		return ShapeFloatKind
	}
	return nil
}

// CostProfile parameterizes the per-operation interpreter overhead of a VM.
// The reference interpreter (CPython analog) is hand-written C with cheap
// dispatch; the framework interpreter (RPython analog) pays translation
// overhead — the paper measures it at roughly 2× (Table I discussion).
type CostProfile struct {
	Name string

	// Dispatch overhead per bytecode: fetch/decode ALU work, handler
	// table loads, and the number of extra poorly-predicted branches.
	DispatchALU    int
	DispatchLoads  int
	DispatchXtraBr int

	// Primitive overhead per value operation (unboxing, tag tests).
	PrimALU   int
	PrimLoads int

	// Footprint is the interpreter's working-set size in bytes
	// (handler tables, type tables): dispatch and primitive loads walk
	// this region, so a translated interpreter's larger footprint costs
	// real cache misses — the paper's explanation for the framework
	// interpreter's lower IPC.
	Footprint uint64

	// Guest-call overhead (frame setup).
	CallALU    int
	CallLoads  int
	CallStores int
}

// ReferenceProfile models the hand-written reference interpreter
// (CPython analog).
func ReferenceProfile() *CostProfile {
	return &CostProfile{
		Name:          "reference",
		DispatchALU:   6,
		DispatchLoads: 2,
		PrimALU:       3,
		PrimLoads:     1,
		Footprint:     24 << 10, // hand-written C core fits in L1
		CallALU:       10,
		CallLoads:     4,
		CallStores:    6,
	}
}

// FrameworkProfile models the framework-generated interpreter (RPython
// translated to C): more instructions per bytecode and worse branch
// behavior, giving the ~2× gap and lower IPC the paper measures.
func FrameworkProfile() *CostProfile {
	return &CostProfile{
		Name:           "framework",
		DispatchALU:    13,
		DispatchLoads:  5,
		DispatchXtraBr: 2,
		PrimALU:        7,
		PrimLoads:      3,
		Footprint:      1536 << 10, // translated interpreter overflows L1/L2
		CallALU:        18,
		CallLoads:      8,
		CallStores:     10,
	}
}

// CustomVMProfile models a custom JIT-optimizing VM baseline (the Racket
// VM in Table II): much lower per-op cost than a pure interpreter, standing
// in for its method-JIT-compiled code.
func CustomVMProfile() *CostProfile {
	return &CostProfile{
		Name:          "customvm",
		DispatchALU:   2,
		DispatchLoads: 1,
		PrimALU:       1,
		PrimLoads:     0,
		Footprint:     16 << 10,
		CallALU:       6,
		CallLoads:     2,
		CallStores:    3,
	}
}

// Machine is the execution interface guest interpreters are written
// against: the meta-tracing analog of writing an interpreter in RPython.
// DirectMachine executes concretely; TracingMachine additionally records
// JIT IR. Type tests and truth tests become guards in recorded traces.
type Machine interface {
	// Heap and runtime access.
	Heap() *heap.Heap
	Runtime() *aot.Runtime
	// Tracing reports whether a recording is active (guests use it only
	// to decide merge-point behavior, never to change semantics).
	Tracing() bool

	// Dispatch accounts one iteration of the guest dispatch loop and
	// emits the cross-layer dispatch annotation (the work meter).
	Dispatch(site uint64, target uint64)

	// Const injects a constant.
	Const(v heap.Value) TV

	// Type tests (guards when tracing).
	KindOf(a TV) heap.Kind
	ShapeOf(a TV) *heap.Shape
	IsNil(a TV) bool
	Truth(a TV, site uint64) bool
	// PromoteInt makes the concrete integer value of a available as a
	// trace constant (RPython's promote hint): guard_value.
	PromoteInt(a TV) int64
	// PromoteRef promotes an object identity (e.g. a code object).
	PromoteRef(a TV) *heap.Obj

	// Integer ops (operands must be ints).
	IntAdd(a, b TV) TV
	IntSub(a, b TV) TV
	IntMul(a, b TV) TV
	IntAddOvf(a, b TV) (TV, bool)
	IntSubOvf(a, b TV) (TV, bool)
	IntMulOvf(a, b TV) (TV, bool)
	IntFloorDiv(a, b TV) TV
	IntMod(a, b TV) TV
	IntAnd(a, b TV) TV
	IntOr(a, b TV) TV
	IntXor(a, b TV) TV
	IntLshift(a, b TV) TV
	IntRshift(a, b TV) TV
	IntNeg(a TV) TV
	IntCmp(opc Opcode, a, b TV) TV

	// Float ops.
	FloatArith(opc Opcode, a, b TV) TV
	FloatCmp(opc Opcode, a, b TV) TV
	FloatNeg(a TV) TV
	IntToFloat(a TV) TV
	FloatToInt(a TV) TV

	// Heap ops.
	NewObj(shape *heap.Shape, nFields int) TV
	NewArray(shape *heap.Shape, nFields, n int) TV
	GetField(o TV, i int) TV
	SetField(o TV, i int, v TV)
	GetElem(o TV, i TV) TV
	SetElem(o TV, i TV, v TV)
	ArrayLen(o TV) TV
	StrGetItem(o TV, i TV) TV
	StrLen(o TV) TV
	PtrEq(a, b TV) TV

	// Annotate emits a cross-layer annotation: a tagged nop in the
	// instruction stream that recording lowers into compiled code.
	Annotate(tag core.Tag, arg uint64)

	// CallAOT performs a residual call to an AOT-compiled function.
	// thunk must capture everything needed to re-execute the call from
	// compiled code.
	CallAOT(fn *aot.Func, thunk func(args []heap.Value) heap.Value, args ...TV) TV

	// Guest-call overhead accounting (frame push/pop).
	GuestCall(site uint64)
	GuestReturn()
}
