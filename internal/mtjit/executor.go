package mtjit

import (
	"fmt"

	"metajit/internal/core"
	"metajit/internal/heap"
	"metajit/internal/isa"
)

// FrameVals is one reconstructed guest frame after deoptimization: the
// concrete values of every slot at the failed guard.
type FrameVals struct {
	CodeID    uint32
	PC        int
	NumLocals int
	Vals      []heap.Value
	// Ctor marks a constructor frame (see FrameSnap.Ctor).
	Ctor bool
}

// ExitState describes how trace execution ended and what the interpreter
// must do next.
type ExitState struct {
	// Frames is the reconstructed frame chain (trace-root first).
	Frames []FrameVals
	// Enter, when non-nil, is a call_assembler target: the driver should
	// rebuild the frames and immediately execute this trace on the
	// innermost frame.
	Enter *Trace
	// StartBridgeGuard, when non-zero, asks the driver to begin
	// recording a bridge from the reconstructed state for this guard.
	StartBridgeGuard uint32
	// GuardID is the guard that failed (0 for finish exits).
	GuardID uint32
}

// Fixed executor instruction mixes (loop closing, trace epilogues,
// blackhole decode), retired as single blocks — these sit on every
// compiled-loop iteration or every deopt slot.
var (
	jumpBlock    = isa.NewBlock(isa.CC(isa.ALU, 2), isa.CC(isa.Jump, 2))
	finishBlock  = isa.NewBlock(isa.CC(isa.ALU, 3), isa.CC(isa.Store, 2))
	callAsmBlock = isa.NewBlock(isa.CC(isa.ALU, 12), isa.CC(isa.Store, 8), isa.CC(isa.Load, 8))
	bhSlotBlock  = isa.NewBlock(isa.CC(isa.Load, 3), isa.CC(isa.ALU, 5))
	bhExitBlock  = isa.NewBlock(isa.CC(isa.ALU, 40), isa.CC(isa.Load, 18), isa.CC(isa.Store, 10))
	mulOvfBlock  = isa.NewBlock(isa.CC(isa.Mul, 1), isa.CC(isa.ALU, 1))
	divModBlock  = isa.NewBlock(isa.CC(isa.Div, 1), isa.CC(isa.ALU, 2))
)

// Execute runs a compiled loop trace against the interpreter frame until a
// guard without an attached bridge fails (deoptimization) or the trace
// finishes. Hot guard failures transfer into bridges without leaving
// JIT-compiled code.
func (e *Engine) Execute(t *Trace, fr FrameAdapter) *ExitState {
	if len(t.Entry.Frames) != 1 {
		panic("mtjit: loop trace entry must have exactly one frame")
	}
	regs := e.getRegs(t.NumRegs)
	e.activeRegs = append(e.activeRegs, &regs)
	defer func() {
		e.activeRegs = e.activeRegs[:len(e.activeRegs)-1]
		e.putRegs(regs)
	}()

	// Scratch buffers reused across iterations: loop-closing jumps and
	// residual calls marshal their operands here instead of allocating
	// per iteration. Consumers copy the values out (or only read them)
	// before the next use, and every value also lives in regs, which is
	// what the simulated GC scans.
	var jumpTmp, callArgs []heap.Value

	entry := t.Entry.Frames[0]
	if len(entry.Slots) != fr.NumSlots() {
		panic(fmt.Sprintf("mtjit: trace %d entry expects %d slots, frame has %d",
			t.ID, len(entry.Slots), fr.NumSlots()))
	}
	for i, ref := range entry.Slots {
		regs[ref] = fr.ReadSlot(i)
	}

	s := e.S
	s.Annot(core.TagJITEnter, uint64(t.ID))
	t.ExecCount++
	// Work accounting is exact: a segment's bytecodes are counted when
	// the segment completes (the loop-closing jump, finish, or
	// call_assembler), and a guard failure counts only the bytecodes the
	// pass actually retired (Op.BCProgress). Totals therefore agree with
	// a pure-interpreter run bit for bit, whatever the tier mix.

	cur := t
	ops := t.Ops
	for pc := 0; pc < len(ops); pc++ {
		op := &ops[pc]
		cur.OpExecs[pc]++
		opPC := cur.AsmBase + cur.OpPCs[pc]

		switch op.Opc {
		case OpLabel:
			continue

		case OpAnnot:
			s.Annot(core.Tag(op.Aux>>32), uint64(uint32(op.Aux)))

		case OpJump:
			// Close the loop: remap jump args onto entry slots. The
			// completed segment (one loop iteration, or a whole bridge)
			// retires its recorded bytecodes here.
			s.Annot(core.TagDispatch, uint64(cur.BCLength))
			s.Block(jumpBlock)
			if cap(jumpTmp) < len(op.Args) {
				jumpTmp = make([]heap.Value, len(op.Args))
			}
			tmp := jumpTmp[:len(op.Args)]
			for i, a := range op.Args {
				tmp[i] = e.val(cur, regs, a)
			}
			// A jump targets the owning loop's entry label (Target is
			// nil for self-jumps, a loop trace for bridge exits).
			target := op.Target
			if target == nil {
				target = cur
			}
			if cur != target {
				// Bridge jumping back into a loop: switch register
				// files.
				regs2 := e.getRegs(target.NumRegs)
				for i, ref := range target.Entry.Frames[0].Slots {
					regs2[ref] = tmp[i]
				}
				e.putRegs(regs)
				regs = regs2
				e.activeRegs[len(e.activeRegs)-1] = &regs
				cur = target
				ops = cur.Ops
			} else {
				for i, ref := range cur.Entry.Frames[0].Slots {
					regs[ref] = tmp[i]
				}
			}
			cur.ExecCount++
			pc = -1 // restart at ops[0]
			continue

		case OpFinish:
			// The recorded path ran to its end: the whole segment
			// retired (finish resumes past the last recorded bytecode).
			s.Annot(core.TagDispatch, uint64(cur.BCLength))
			s.Block(finishBlock)
			frames := e.materializeFrames(cur, op.Resume, regs, false)
			s.Annot(core.TagJITLeave, uint64(cur.ID))
			return &ExitState{Frames: frames}

		case OpCallAssembler:
			// Recording ended at another loop's header, before its
			// bytecode dispatched: the whole segment retired.
			s.Annot(core.TagDispatch, uint64(cur.BCLength))
			s.Block(callAsmBlock)
			s.CallIndirect(opPC, op.Target.AsmBase)
			frames := e.materializeFrames(cur, op.Resume, regs, false)
			s.Annot(core.TagJITLeave, uint64(cur.ID))
			return &ExitState{Frames: frames, Enter: op.Target}

		case OpGuardTrue, OpGuardFalse, OpGuardValue, OpGuardClass,
			OpGuardNonnull, OpGuardIsnull, OpGuardNoOverflow, OpGuardNotInvalidated:
			ok := e.checkGuard(cur, op, regs)
			if ok && e.ForceGuardFail != nil && e.ForceGuardFail(cur, op) {
				ok = false
			}
			// guard_not_invalidated lowers to zero instructions (the
			// invalidation path patches the code instead), so only the
			// branch below is accounted for it.
			if n := op.Opc.AsmLen() - 1; n > 0 {
				s.Ops(isa.ALU, n)
			}
			s.Branch(opPC, !ok)
			if ok {
				continue
			}
			exit, newTrace, newRegs := e.guardFail(cur, op, regs)
			if exit != nil {
				return exit
			}
			// Transfer into the bridge.
			cur = newTrace
			ops = cur.Ops
			e.putRegs(regs)
			regs = newRegs
			e.activeRegs[len(e.activeRegs)-1] = &regs
			pc = -1
			continue

		case OpCall, OpCallMayForce, OpCondCall:
			if cap(callArgs) < len(op.Args) {
				callArgs = make([]heap.Value, len(op.Args))
			}
			args := callArgs[:len(op.Args)]
			for i, a := range op.Args {
				args[i] = e.val(cur, regs, a)
			}
			s.Annot(core.TagAOTCallEnter, uint64(op.Fn.ID))
			e.RT.CallPrologue(op.Fn, len(args))
			res := op.Thunk(args)
			e.RT.CallEpilogue(op.Fn)
			s.Annot(core.TagAOTCallLeave, uint64(op.Fn.ID))
			if op.Res != RefNone {
				regs[op.Res] = res
			}

		default:
			e.execSimple(cur, op, opPC, regs)
		}
	}
	panic(fmt.Sprintf("mtjit: trace %d fell off the end (missing jump/finish)", cur.ID))
}

// val resolves a ref against the register file and constant table.
func (e *Engine) val(t *Trace, regs []heap.Value, r Ref) heap.Value {
	if r.IsConst() {
		return t.Consts[r.ConstIndex()]
	}
	if r == RefUnused || r == RefNone {
		return heap.Nil
	}
	return regs[r]
}

// checkGuard evaluates a guard condition.
func (e *Engine) checkGuard(t *Trace, op *Op, regs []heap.Value) bool {
	switch op.Opc {
	case OpGuardTrue:
		return e.val(t, regs, op.A).Truthy()
	case OpGuardFalse:
		return !e.val(t, regs, op.A).Truthy()
	case OpGuardValue:
		v := e.val(t, regs, op.A)
		if v.Kind == heap.KindRef {
			return v.O != nil && int64(v.O.UID()) == op.Aux
		}
		return v.I == op.Aux
	case OpGuardClass:
		v := e.val(t, regs, op.A)
		if v.Kind != heap.KindRef {
			return KindShape(v.Kind) == op.Shape
		}
		return v.O != nil && v.O.Shape == op.Shape
	case OpGuardNonnull:
		return e.val(t, regs, op.A).Kind != heap.KindNil
	case OpGuardIsnull:
		return e.val(t, regs, op.A).Kind == heap.KindNil
	case OpGuardNoOverflow:
		// The paired ovf op stored its overflow flag in the engine.
		return e.lastOvf == (op.Aux == 1)
	case OpGuardNotInvalidated:
		return !t.Invalidated
	}
	panic("mtjit: not a guard: " + op.Opc.Name())
}

// guardFail handles a failing guard: transfer to an attached bridge, or
// deoptimize through the blackhole interpreter.
func (e *Engine) guardFail(t *Trace, op *Op, regs []heap.Value) (*ExitState, *Trace, []heap.Value) {
	e.guardFails[op.GuardID]++
	e.keyGuardFails[t.Key]++
	e.stats.GuardFailures++
	if m := telem(); m != nil {
		m.guardFails.Inc()
	}
	s := e.S
	s.Annot(core.TagGuardFail, uint64(op.GuardID))
	// The failing pass retired only the bytecodes before the guard's
	// bytecode; the interpreter (or the bridge, which was recorded from
	// the re-executed bytecode) counts the rest itself.
	if op.BCProgress > 0 {
		s.Annot(core.TagDispatch, uint64(op.BCProgress))
	}

	if bridge := e.bridges[op.GuardID]; bridge != nil {
		s.Annot(core.TagBridgeEnter, uint64(bridge.ID))
		// Compute the slot values of the resume state and feed them to
		// the bridge's entry mapping; virtuals are materialized. The
		// caller releases the old register file after the transfer.
		newRegs := e.getRegs(bridge.NumRegs)
		virt := e.materializeVirtuals(t, op.Resume, regs)
		if len(bridge.Entry.Frames) != len(op.Resume.Frames) {
			panic("mtjit: bridge entry does not match guard resume shape")
		}
		for fi := range op.Resume.Frames {
			src := &op.Resume.Frames[fi]
			dst := &bridge.Entry.Frames[fi]
			for si, ref := range src.Slots {
				newRegs[dst.Slots[si]] = e.resumeVal(t, regs, virt, ref)
			}
		}
		bridge.ExecCount++
		return nil, bridge, newRegs
	}

	// Deoptimize.
	s.Annot(core.TagJITLeave, uint64(t.ID))
	s.Annot(core.TagBlackholeEnter, uint64(op.GuardID))
	frames := e.materializeFrames(t, op.Resume, regs, true)
	s.Annot(core.TagBlackholeLeave, uint64(op.GuardID))

	exit := &ExitState{Frames: frames, GuardID: op.GuardID}
	if e.guardFails[op.GuardID] == e.BridgeThreshold {
		exit.StartBridgeGuard = op.GuardID
		e.pendingBridgeResume[op.GuardID] = op.Resume
	}
	return exit, nil, nil
}

// materializeVirtuals rebuilds allocation-removed objects described by a
// resume state, in two passes so virtuals may reference each other.
func (e *Engine) materializeVirtuals(t *Trace, r *ResumeState, regs []heap.Value) map[Ref]*heap.Obj {
	if len(r.Virtuals) == 0 {
		return nil
	}
	virt := make(map[Ref]*heap.Obj, len(r.Virtuals))
	for _, vd := range r.Virtuals {
		var o *heap.Obj
		if vd.ArrayLen >= 0 {
			o = e.H.AllocElems(vd.Shape, vd.NumFields, vd.ArrayLen)
		} else {
			o = e.H.AllocObj(vd.Shape, vd.NumFields)
		}
		virt[vd.Ref] = o
	}
	for _, vd := range r.Virtuals {
		o := virt[vd.Ref]
		for i, f := range vd.FieldRefs {
			e.H.WriteField(o, i, e.resumeVal(t, regs, virt, f))
		}
		for i, el := range vd.ElemRefs {
			e.H.WriteElem(o, i, e.resumeVal(t, regs, virt, el))
		}
	}
	return virt
}

// resumeVal resolves a resume ref, consulting materialized virtuals.
func (e *Engine) resumeVal(t *Trace, regs []heap.Value, virt map[Ref]*heap.Obj, r Ref) heap.Value {
	if o, ok := virt[r]; ok {
		return heap.RefVal(o)
	}
	return e.val(t, regs, r)
}

// materializeFrames runs the blackhole interpreter: it decodes the resume
// data and rebuilds every interpreter frame. The blackhole interpreter's
// instruction mix is dominated by dependent loads and indirect dispatch,
// which is why the paper measures it with the worst IPC of all phases
// (Table IV).
func (e *Engine) materializeFrames(t *Trace, r *ResumeState, regs []heap.Value, blackhole bool) []FrameVals {
	virt := e.materializeVirtuals(t, r, regs)
	out := make([]FrameVals, len(r.Frames))
	s := e.S
	for fi := range r.Frames {
		f := &r.Frames[fi]
		fv := FrameVals{
			CodeID:    f.CodeID,
			PC:        f.PC,
			NumLocals: f.NumLocals,
			Vals:      make([]heap.Value, len(f.Slots)),
			Ctor:      f.Ctor,
		}
		for si, ref := range f.Slots {
			fv.Vals[si] = e.resumeVal(t, regs, virt, ref)
			if blackhole {
				// Resume-data decode: chase the compressed encoding,
				// dispatch on the tag, store the slot.
				s.Block(bhSlotBlock)
				s.Indirect(e.bhSite.PC(), uint64(ref&15)*32+isa.RegionVMText+0x60_0000)
				s.Store(isa.RegionStack + uint64(fi)*512 + uint64(si)*8)
			}
		}
		out[fi] = fv
	}
	if blackhole {
		s.Block(bhExitBlock)
	}
	return out
}

// execSimple executes the arithmetic/memory IR nodes.
func (e *Engine) execSimple(t *Trace, op *Op, opPC uint64, regs []heap.Value) {
	s := e.S
	switch op.Opc {
	case OpIntAddOvf:
		a, b := e.val(t, regs, op.A), e.val(t, regs, op.B)
		r, ovf := addOvf(a.I, b.I)
		e.lastOvf = ovf
		regs[op.Res] = heap.IntVal(r)
		s.Ops(isa.ALU, 1)
	case OpIntSubOvf:
		a, b := e.val(t, regs, op.A), e.val(t, regs, op.B)
		r, ovf := subOvf(a.I, b.I)
		e.lastOvf = ovf
		regs[op.Res] = heap.IntVal(r)
		s.Ops(isa.ALU, 1)
	case OpIntMulOvf:
		a, b := e.val(t, regs, op.A), e.val(t, regs, op.B)
		r, ovf := mulOvf(a.I, b.I)
		e.lastOvf = ovf
		regs[op.Res] = heap.IntVal(r)
		s.Block(mulOvfBlock)

	case OpGetfieldGC:
		o := e.val(t, regs, op.A).O
		regs[op.Res] = e.H.ReadField(o, int(op.Aux))
	case OpSetfieldGC:
		o := e.val(t, regs, op.A).O
		s.Ops(isa.ALU, 1)
		e.H.WriteField(o, int(op.Aux), e.val(t, regs, op.B))
	case OpGetarrayitemGC:
		o := e.val(t, regs, op.A).O
		s.Ops(isa.ALU, 1)
		regs[op.Res] = e.H.ReadElem(o, int(e.val(t, regs, op.B).I))
	case OpSetarrayitemGC:
		o := e.val(t, regs, op.A).O
		s.Ops(isa.ALU, 2)
		e.H.WriteElem(o, int(e.val(t, regs, op.B).I), e.val(t, regs, op.C))
	case OpArraylenGC:
		o := e.val(t, regs, op.A).O
		s.Load(o.Addr() + 8)
		regs[op.Res] = heap.IntVal(int64(len(o.Elems)))
	case OpStrgetitem, OpUnicodegetitem:
		o := e.val(t, regs, op.A).O
		s.Ops(isa.ALU, 1)
		regs[op.Res] = heap.IntVal(int64(e.H.LoadByte(o, int(e.val(t, regs, op.B).I))))
	case OpStrlen, OpUnicodelen:
		o := e.val(t, regs, op.A).O
		s.Load(o.Addr() + 8)
		regs[op.Res] = heap.IntVal(int64(len(o.Bytes)))

	case OpNewWithVtable:
		s.Ops(isa.ALU, op.Opc.AsmLen()-2)
		regs[op.Res] = heap.RefVal(e.H.AllocObj(op.Shape, int(op.Aux)))
	case OpNewArray:
		nf, n := unpackNewArray(op.Aux)
		s.Ops(isa.ALU, op.Opc.AsmLen()-2)
		regs[op.Res] = heap.RefVal(e.H.AllocElems(op.Shape, nf, n))

	default:
		// Pure arithmetic.
		a := e.val(t, regs, op.A)
		var res heap.Value
		var ok bool
		if isBinary(op.Opc) {
			res, ok = evalPureBin(op.Opc, a, e.val(t, regs, op.B))
		} else {
			res, ok = evalPureUn(op.Opc, a)
		}
		if !ok {
			panic("mtjit: cannot execute IR op " + op.Opc.Name())
		}
		regs[op.Res] = res
		switch op.Opc.Cat() {
		case CatFloat:
			switch op.Opc {
			case OpFloatMul:
				s.Ops(isa.FMul, 1)
			case OpFloatTruediv:
				s.Ops(isa.FDiv, 1)
			default:
				s.Ops(isa.FPU, op.Opc.AsmLen())
			}
		default:
			if op.Opc == OpIntMul {
				s.Ops(isa.Mul, 1)
			} else if op.Opc == OpIntFloorDiv || op.Opc == OpIntMod {
				s.Block(divModBlock)
			} else {
				s.Ops(isa.ALU, op.Opc.AsmLen())
			}
		}
	}
}
