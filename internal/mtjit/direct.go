package mtjit

import (
	"metajit/internal/aot"
	"metajit/internal/core"
	"metajit/internal/heap"
	"metajit/internal/isa"
)

// DirectMachine executes guest operations concretely and emits the
// interpreter's cost into the instruction stream according to its
// CostProfile. It implements plain interpretation for both the reference
// VM (CPython analog) and the framework VM with the JIT off or cold.
type DirectMachine struct {
	H  *heap.Heap
	RT *aot.Runtime
	S  isa.Stream
	P  *CostProfile

	dispatchSeq uint64

	// Per-profile instruction mixes, precomputed so the hottest
	// fixed-shape overheads retire through one Block call each. Held per
	// machine (not on the shared CostProfile) so concurrent cells never
	// share mutable state.
	callBlock *isa.Block // guest-call frame setup
	faddBlock *isa.Block // float add/sub/cmp-style: PrimALU + one FPU op
	fmulBlock *isa.Block
	fdivBlock *isa.Block
}

var _ Machine = (*DirectMachine)(nil)

// guestReturnBlock is the fixed frame-teardown overhead of GuestReturn.
var guestReturnBlock = isa.NewBlock(isa.CC(isa.ALU, 2), isa.CC(isa.Load, 2))

// NewDirectMachine returns a machine over the given heap/runtime with the
// given cost profile.
func NewDirectMachine(rt *aot.Runtime, p *CostProfile) *DirectMachine {
	return &DirectMachine{
		H: rt.H, RT: rt, S: rt.H.Stream(), P: p,
		callBlock: isa.NewBlock(isa.CC(isa.ALU, p.CallALU),
			isa.CC(isa.Load, p.CallLoads), isa.CC(isa.Store, p.CallStores)),
		faddBlock: isa.NewBlock(isa.CC(isa.ALU, p.PrimALU), isa.CC(isa.FPU, 1)),
		fmulBlock: isa.NewBlock(isa.CC(isa.ALU, p.PrimALU), isa.CC(isa.FMul, 1)),
		fdivBlock: isa.NewBlock(isa.CC(isa.ALU, p.PrimALU), isa.CC(isa.FDiv, 1)),
	}
}

// Heap implements Machine.
func (m *DirectMachine) Heap() *heap.Heap { return m.H }

// Runtime implements Machine.
func (m *DirectMachine) Runtime() *aot.Runtime { return m.RT }

// Tracing implements Machine.
func (m *DirectMachine) Tracing() bool { return false }

// tableLoad emits one load into the interpreter's working set: larger
// footprints (translated interpreters) miss the caches, which is where
// the reference-vs-framework IPC gap comes from.
func (m *DirectMachine) tableLoad(salt uint64) {
	if m.P.Footprint == 0 {
		m.S.Ops(isa.Load, 1)
		return
	}
	// Interpreter tables have strong locality: most accesses hit a hot
	// core, a fraction walks the full working set.
	h := salt * 0x9E3779B97F4A7C15
	base := isa.RegionVMText + 0x20_0000
	var addr uint64
	if h%16 != 0 {
		addr = base + (h>>32)%(16<<10)
	} else {
		addr = base + (h>>16)%m.P.Footprint
	}
	m.S.Load(addr &^ 7)
}

// Dispatch implements Machine: the fetch/decode/dispatch cost of one
// bytecode, including the hard-to-predict indirect handler jump.
func (m *DirectMachine) Dispatch(site uint64, target uint64) {
	m.S.Annot(core.TagDispatch, 1)
	m.S.Ops(isa.ALU, m.P.DispatchALU)
	for i := 0; i < m.P.DispatchLoads; i++ {
		m.tableLoad(target + uint64(i)*977)
	}
	m.S.Indirect(site, target)
	m.dispatchSeq++
	for i := 0; i < m.P.DispatchXtraBr; i++ {
		// Framework interpreters carry extra data-dependent branches
		// per bytecode (jit bookkeeping, signal checks); their outcome
		// pattern follows the bytecode stream.
		m.S.Branch(site+4+uint64(i)*4, (target>>uint(i+3))&1 == 0)
	}
}

func (m *DirectMachine) prim() {
	m.S.Ops(isa.ALU, m.P.PrimALU)
	for i := 0; i < m.P.PrimLoads; i++ {
		m.dispatchSeq++
		m.tableLoad(m.dispatchSeq*7 + uint64(i))
	}
}

// Const implements Machine.
func (m *DirectMachine) Const(v heap.Value) TV { return Concrete(v) }

// KindOf implements Machine.
func (m *DirectMachine) KindOf(a TV) heap.Kind {
	m.S.Ops(isa.ALU, 1)
	return a.V.Kind
}

// ShapeOf implements Machine.
func (m *DirectMachine) ShapeOf(a TV) *heap.Shape {
	m.S.Ops(isa.ALU, 1)
	if a.V.Kind != heap.KindRef {
		return KindShape(a.V.Kind)
	}
	m.S.Load(a.V.O.Addr())
	return a.V.O.Shape
}

// IsNil implements Machine.
func (m *DirectMachine) IsNil(a TV) bool {
	m.S.Ops(isa.ALU, 1)
	return a.V.Kind == heap.KindNil
}

// Truth implements Machine: a data-dependent guest branch.
func (m *DirectMachine) Truth(a TV, site uint64) bool {
	m.prim()
	t := a.V.Truthy()
	m.S.Branch(site, t)
	return t
}

// PromoteInt implements Machine.
func (m *DirectMachine) PromoteInt(a TV) int64 {
	m.S.Ops(isa.ALU, 1)
	return a.V.I
}

// PromoteRef implements Machine.
func (m *DirectMachine) PromoteRef(a TV) *heap.Obj {
	m.S.Ops(isa.ALU, 1)
	return a.V.O
}

// ---- integer ops ----

// IntAdd implements Machine.
func (m *DirectMachine) IntAdd(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I + b.V.I))
}

// IntSub implements Machine.
func (m *DirectMachine) IntSub(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I - b.V.I))
}

// IntMul implements Machine.
func (m *DirectMachine) IntMul(a, b TV) TV {
	m.prim()
	m.S.Ops(isa.Mul, 1)
	return Concrete(heap.IntVal(a.V.I * b.V.I))
}

func addOvf(a, b int64) (int64, bool) {
	r := a + b
	return r, ((a ^ r) & (b ^ r)) < 0
}

func subOvf(a, b int64) (int64, bool) {
	r := a - b
	return r, ((a ^ b) & (a ^ r)) < 0
}

func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	r := a * b
	if r/b != a || (a == -1 && b == -9223372036854775808) || (b == -1 && a == -9223372036854775808) {
		return r, true
	}
	return r, false
}

// IntAddOvf implements Machine.
func (m *DirectMachine) IntAddOvf(a, b TV) (TV, bool) {
	m.prim()
	r, ovf := addOvf(a.V.I, b.V.I)
	return Concrete(heap.IntVal(r)), ovf
}

// IntSubOvf implements Machine.
func (m *DirectMachine) IntSubOvf(a, b TV) (TV, bool) {
	m.prim()
	r, ovf := subOvf(a.V.I, b.V.I)
	return Concrete(heap.IntVal(r)), ovf
}

// IntMulOvf implements Machine.
func (m *DirectMachine) IntMulOvf(a, b TV) (TV, bool) {
	m.prim()
	m.S.Ops(isa.Mul, 1)
	r, ovf := mulOvf(a.V.I, b.V.I)
	return Concrete(heap.IntVal(r)), ovf
}

// IntFloorDiv implements Machine (Python floor semantics; b != 0).
func (m *DirectMachine) IntFloorDiv(a, b TV) TV {
	m.prim()
	m.S.Ops(isa.Div, 1)
	return Concrete(heap.IntVal(floorDiv(a.V.I, b.V.I)))
}

// IntMod implements Machine (Python floor semantics; b != 0).
func (m *DirectMachine) IntMod(a, b TV) TV {
	m.prim()
	m.S.Ops(isa.Div, 1)
	return Concrete(heap.IntVal(floorMod(a.V.I, b.V.I)))
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	r := a % b
	if r != 0 && ((a < 0) != (b < 0)) {
		r += b
	}
	return r
}

// IntAnd implements Machine.
func (m *DirectMachine) IntAnd(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I & b.V.I))
}

// IntOr implements Machine.
func (m *DirectMachine) IntOr(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I | b.V.I))
}

// IntXor implements Machine.
func (m *DirectMachine) IntXor(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I ^ b.V.I))
}

// IntLshift implements Machine (shift counts 0..63).
func (m *DirectMachine) IntLshift(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I << uint(b.V.I&63)))
}

// IntRshift implements Machine.
func (m *DirectMachine) IntRshift(a, b TV) TV {
	m.prim()
	return Concrete(heap.IntVal(a.V.I >> uint(b.V.I&63)))
}

// IntNeg implements Machine.
func (m *DirectMachine) IntNeg(a TV) TV {
	m.prim()
	return Concrete(heap.IntVal(-a.V.I))
}

// IntCmp implements Machine for OpIntLt..OpIntGe.
func (m *DirectMachine) IntCmp(opc Opcode, a, b TV) TV {
	m.prim()
	return Concrete(heap.BoolVal(intCmp(opc, a.V.I, b.V.I)))
}

func intCmp(opc Opcode, a, b int64) bool {
	switch opc {
	case OpIntLt:
		return a < b
	case OpIntLe:
		return a <= b
	case OpIntEq:
		return a == b
	case OpIntNe:
		return a != b
	case OpIntGt:
		return a > b
	case OpIntGe:
		return a >= b
	}
	panic("mtjit: bad int comparison opcode " + opc.Name())
}

// ---- float ops ----

// FloatArith implements Machine for add/sub/mul/div.
func (m *DirectMachine) FloatArith(opc Opcode, a, b TV) TV {
	switch opc {
	case OpFloatMul:
		m.S.Block(m.fmulBlock)
	case OpFloatTruediv:
		m.S.Block(m.fdivBlock)
	default:
		m.S.Block(m.faddBlock)
	}
	return Concrete(heap.FloatVal(floatArith(opc, a.V.F, b.V.F)))
}

func floatArith(opc Opcode, a, b float64) float64 {
	switch opc {
	case OpFloatAdd:
		return a + b
	case OpFloatSub:
		return a - b
	case OpFloatMul:
		return a * b
	case OpFloatTruediv:
		return a / b
	}
	panic("mtjit: bad float arith opcode " + opc.Name())
}

// FloatCmp implements Machine for OpFloatLt..OpFloatGe.
func (m *DirectMachine) FloatCmp(opc Opcode, a, b TV) TV {
	m.S.Block(m.faddBlock)
	return Concrete(heap.BoolVal(floatCmp(opc, a.V.F, b.V.F)))
}

func floatCmp(opc Opcode, a, b float64) bool {
	switch opc {
	case OpFloatLt:
		return a < b
	case OpFloatLe:
		return a <= b
	case OpFloatEq:
		return a == b
	case OpFloatNe:
		return a != b
	case OpFloatGt:
		return a > b
	case OpFloatGe:
		return a >= b
	}
	panic("mtjit: bad float comparison opcode " + opc.Name())
}

// FloatNeg implements Machine.
func (m *DirectMachine) FloatNeg(a TV) TV {
	m.S.Ops(isa.FPU, 1)
	return Concrete(heap.FloatVal(-a.V.F))
}

// IntToFloat implements Machine.
func (m *DirectMachine) IntToFloat(a TV) TV {
	m.S.Ops(isa.FPU, 1)
	return Concrete(heap.FloatVal(float64(a.V.I)))
}

// FloatToInt implements Machine (truncating).
func (m *DirectMachine) FloatToInt(a TV) TV {
	m.S.Ops(isa.FPU, 1)
	return Concrete(heap.IntVal(int64(a.V.F)))
}

// ---- heap ops ----

// NewObj implements Machine.
func (m *DirectMachine) NewObj(shape *heap.Shape, nFields int) TV {
	m.prim()
	return Concrete(heap.RefVal(m.H.AllocObj(shape, nFields)))
}

// NewArray implements Machine.
func (m *DirectMachine) NewArray(shape *heap.Shape, nFields, n int) TV {
	m.prim()
	return Concrete(heap.RefVal(m.H.AllocElems(shape, nFields, n)))
}

// GetField implements Machine.
func (m *DirectMachine) GetField(o TV, i int) TV {
	m.prim()
	return Concrete(m.H.ReadField(o.V.O, i))
}

// SetField implements Machine.
func (m *DirectMachine) SetField(o TV, i int, v TV) {
	m.prim()
	m.H.WriteField(o.V.O, i, v.V)
}

// GetElem implements Machine (bounds already checked by the guest).
func (m *DirectMachine) GetElem(o TV, i TV) TV {
	m.prim()
	return Concrete(m.H.ReadElem(o.V.O, int(i.V.I)))
}

// SetElem implements Machine.
func (m *DirectMachine) SetElem(o TV, i TV, v TV) {
	m.prim()
	m.H.WriteElem(o.V.O, int(i.V.I), v.V)
}

// ArrayLen implements Machine.
func (m *DirectMachine) ArrayLen(o TV) TV {
	m.S.Ops(isa.ALU, 1)
	m.S.Load(o.V.O.Addr() + 8)
	return Concrete(heap.IntVal(int64(len(o.V.O.Elems))))
}

// StrGetItem implements Machine.
func (m *DirectMachine) StrGetItem(o TV, i TV) TV {
	m.prim()
	return Concrete(heap.IntVal(int64(m.H.LoadByte(o.V.O, int(i.V.I)))))
}

// StrLen implements Machine.
func (m *DirectMachine) StrLen(o TV) TV {
	m.S.Ops(isa.ALU, 1)
	m.S.Load(o.V.O.Addr() + 8)
	return Concrete(heap.IntVal(int64(len(o.V.O.Bytes))))
}

// PtrEq implements Machine.
func (m *DirectMachine) PtrEq(a, b TV) TV {
	m.S.Ops(isa.ALU, 1)
	return Concrete(heap.BoolVal(a.V.Eq(b.V)))
}

// Annotate implements Machine: the annotation is a tagged nop.
func (m *DirectMachine) Annotate(tag core.Tag, arg uint64) {
	m.S.Annot(tag, arg)
}

// CallAOT implements Machine: from the plain interpreter, a residual call
// is just a call (no phase change).
func (m *DirectMachine) CallAOT(fn *aot.Func, thunk func(args []heap.Value) heap.Value, args ...TV) TV {
	vals := make([]heap.Value, len(args))
	for i, a := range args {
		vals[i] = a.V
	}
	m.RT.CallPrologue(fn, len(args))
	res := thunk(vals)
	m.RT.CallEpilogue(fn)
	return Concrete(res)
}

// GuestCall implements Machine.
func (m *DirectMachine) GuestCall(site uint64) {
	m.S.Block(m.callBlock)
	m.S.CallDirect(site)
}

// GuestReturn implements Machine.
func (m *DirectMachine) GuestReturn() {
	m.S.Block(guestReturnBlock)
	m.S.Return()
}
