package mtjit

import (
	"fmt"
	"reflect"
	"testing"

	"metajit/internal/aot"
	"metajit/internal/heap"
)

// This file checks the per-pass semantics contract behind the ablation
// experiments: whichever OptConfig subset runs, an optimized trace must
// compute exactly what the recorded trace computed, and the op count the
// optimizer reports removing must match the IR delta. The fixture is a
// hand-built loop trace with material for every pass — foldable constant
// arithmetic, a redundant class guard, a forwardable field load on a
// non-escaping allocation, a dead subtraction — evaluated for several
// iterations by a heap-free IR interpreter.

// passFixture builds a fresh copy of the fixture loop. Inputs: r1 = i,
// r2 = limit, r3 = accumulator.
func passFixture() *Trace {
	sh := &heap.Shape{Name: "Box", ID: 41}
	fn := &aot.Func{ID: 1, Name: "fixture.residual"}
	thunk := func(a []heap.Value) heap.Value { return heap.IntVal(a[0].I % 97) }
	resume := func() *ResumeState {
		return &ResumeState{Frames: []FrameSnap{{Slots: []Ref{1, 2, 3}, NumLocals: 3}}}
	}
	ops := []Op{
		{Opc: OpIntAdd, A: ConstRef(0), B: ConstRef(1), Res: 4},      // 2+3 -> 5 (fold)
		{Opc: OpGuardClass, A: 1, Shape: ShapeIntKind, GuardID: 1},   // keeps i an int
		{Opc: OpGuardClass, A: 1, Shape: ShapeIntKind, GuardID: 2},   // redundant (guards)
		{Opc: OpIntAddOvf, A: 1, B: ConstRef(0), Res: 5},             // i+2
		{Opc: OpGuardNoOverflow, GuardID: 3},                         //
		{Opc: OpNewWithVtable, Shape: sh, Aux: 1, Res: 6},            // non-escaping (virtuals)
		{Opc: OpSetfieldGC, A: 6, B: 5, Aux: 0},                      //
		{Opc: OpGetfieldGC, A: 6, Aux: 0, Res: 7},                    // forwards to r5 (cse)
		{Opc: OpIntMul, A: 7, B: 4, Res: 8},                          // (i+2)*5
		{Opc: OpIntSub, A: 8, B: 8, Res: 9},                          // unused (dce)
		{Opc: OpIntLt, A: 5, B: 2, Res: 10},                          //
		{Opc: OpGuardTrue, A: 10, GuardID: 4},                        //
		{Opc: OpCall, Args: []Ref{8}, Res: 11, Fn: fn, Thunk: thunk}, // residual (kept always)
		{Opc: OpIntAdd, A: 3, B: 11, Res: 12},                        // acc'
		{Opc: OpJump, Args: []Ref{5, 2, 12}},                         //
	}
	for i := range ops {
		if ops[i].Opc.IsGuard() {
			ops[i].Resume = resume()
		}
	}
	t := buildTrace(3, []heap.Value{heap.IntVal(2), heap.IntVal(3)}, ops)
	t.OpPCs = make([]uint64, len(t.Ops))
	t.OpExecs = make([]uint64, len(t.Ops))
	return t
}

// evalFixture interprets the trace IR for iters loop iterations and
// returns the concrete jump-arg history — the loop-carried state after
// every iteration, which is the trace's observable semantics.
func evalFixture(t *Trace, inputs []heap.Value, iters int) ([][]int64, error) {
	regs := make([]heap.Value, t.NumRegs)
	for i, r := range t.Entry.Frames[0].Slots {
		regs[r] = inputs[i]
	}
	val := func(r Ref) heap.Value {
		if r.IsConst() {
			return t.Consts[r.ConstIndex()]
		}
		if r == RefUnused || r == RefNone {
			return heap.Nil
		}
		return regs[r]
	}
	var history [][]int64
	lastOvf := false
	for pc := 0; pc < len(t.Ops); pc++ {
		op := &t.Ops[pc]
		switch op.Opc {
		case OpLabel:
		case OpJump:
			state := make([]int64, len(op.Args))
			vals := make([]heap.Value, len(op.Args))
			for i, a := range op.Args {
				vals[i] = val(a)
				state[i] = vals[i].I
			}
			history = append(history, state)
			if len(history) == iters {
				return history, nil
			}
			for i, r := range t.Entry.Frames[0].Slots {
				regs[r] = vals[i]
			}
			pc = -1
		case OpGuardClass:
			v := val(op.A)
			sh := KindShape(v.Kind)
			if v.Kind == heap.KindRef {
				sh = v.O.Shape
			}
			if sh != op.Shape {
				return nil, fmt.Errorf("op %d: guard_class failed", pc)
			}
		case OpGuardTrue:
			if !val(op.A).Truthy() {
				return nil, fmt.Errorf("op %d: guard_true failed", pc)
			}
		case OpGuardNoOverflow:
			if lastOvf != (op.Aux == 1) {
				return nil, fmt.Errorf("op %d: guard_no_overflow failed", pc)
			}
		case OpGuardNotInvalidated:
		case OpIntAddOvf:
			r, ovf := addOvf(val(op.A).I, val(op.B).I)
			lastOvf = ovf
			regs[op.Res] = heap.IntVal(r)
		case OpNewWithVtable:
			regs[op.Res] = heap.RefVal(&heap.Obj{Shape: op.Shape, Fields: make([]heap.Value, op.Aux)})
		case OpSetfieldGC:
			val(op.A).O.Fields[op.Aux] = val(op.B)
		case OpGetfieldGC:
			regs[op.Res] = val(op.A).O.Fields[op.Aux]
		case OpCall:
			args := make([]heap.Value, len(op.Args))
			for i, a := range op.Args {
				args[i] = val(a)
			}
			regs[op.Res] = op.Thunk(args)
		default:
			a := val(op.A)
			var res heap.Value
			var ok bool
			if isBinary(op.Opc) {
				res, ok = evalPureBin(op.Opc, a, val(op.B))
			} else {
				res, ok = evalPureUn(op.Opc, a)
			}
			if !ok {
				return nil, fmt.Errorf("op %d: cannot evaluate %s", pc, op.Opc.Name())
			}
			regs[op.Res] = res
		}
	}
	return nil, fmt.Errorf("trace fell off the end")
}

// TestPassAblationsPreserveSemantics runs the fixture under every
// ablation the experiment matrix uses (plus each pass alone) and demands
// the optimized trace computes the recorded trace's loop-carried state,
// that the optimizer's removed-op count matches the IR delta, and that
// the result still validates structurally.
func TestPassAblationsPreserveSemantics(t *testing.T) {
	inputs := []heap.Value{heap.IntVal(0), heap.IntVal(1 << 40), heap.IntVal(0)}
	const iters = 8

	want, err := evalFixture(passFixture(), inputs, iters)
	if err != nil {
		t.Fatalf("reference evaluation: %v", err)
	}

	single := func(name string, set func(*OptConfig)) struct {
		name string
		cfg  OptConfig
	} {
		cfg := NoOpts()
		set(&cfg)
		return struct {
			name string
			cfg  OptConfig
		}{name, cfg}
	}
	ablate := func(name string, clear func(*OptConfig)) struct {
		name string
		cfg  OptConfig
	} {
		cfg := AllOpts()
		clear(&cfg)
		return struct {
			name string
			cfg  OptConfig
		}{name, cfg}
	}
	cases := []struct {
		name string
		cfg  OptConfig
	}{
		{"none", NoOpts()},
		{"all", AllOpts()},
		ablate("no-fold", func(c *OptConfig) { c.Fold = false }),
		ablate("no-guards", func(c *OptConfig) { c.Guards = false }),
		ablate("no-cse", func(c *OptConfig) { c.CSE = false }),
		ablate("no-virtuals", func(c *OptConfig) { c.Virtuals = false }),
		ablate("no-dce", func(c *OptConfig) { c.DCE = false }),
		single("only-fold", func(c *OptConfig) { c.Fold = true }),
		single("only-guards", func(c *OptConfig) { c.Guards = true }),
		single("only-cse", func(c *OptConfig) { c.CSE = true }),
		single("only-virtuals", func(c *OptConfig) { c.Virtuals = true }),
		single("only-dce", func(c *OptConfig) { c.DCE = true }),
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := passFixture()
			before := len(tr.Ops)
			removed := Optimize(tr, tc.cfg)
			if removed != before-len(tr.Ops) {
				t.Errorf("Optimize reported %d removed, IR shrank by %d",
					removed, before-len(tr.Ops))
			}
			tr.OpPCs = make([]uint64, len(tr.Ops))
			tr.OpExecs = make([]uint64, len(tr.Ops))
			if err := ValidateTrace(tr); err != nil {
				t.Errorf("optimized trace is malformed: %v", err)
			}
			got, err := evalFixture(tr, inputs, iters)
			if err != nil {
				t.Fatalf("optimized evaluation: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("semantics changed:\n  recorded:  %v\n  optimized: %v", want, got)
			}
		})
	}

	// The full pipeline must actually bite on this fixture: the folded
	// add, the duplicate guard, the virtualized allocation pair, and the
	// dead sub are all removable.
	tr := passFixture()
	if removed := Optimize(tr, AllOpts()); removed < 5 {
		t.Errorf("full pipeline removed only %d ops from the fixture", removed)
	}
}
