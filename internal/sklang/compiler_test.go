package sklang

import (
	"testing"

	"metajit/internal/cpu"
	"metajit/internal/heap"
	"metajit/internal/mtjit"
	"metajit/internal/pylang"
)

func runScheme(t *testing.T, src string, cfg pylang.Config) (heap.Value, *pylang.VM) {
	t.Helper()
	vm := pylang.New(cpu.NewDefault(), cfg)
	vm.UnicodeStrings = false
	if err := Load(vm, src); err != nil {
		t.Fatalf("load: %v", err)
	}
	return vm.RunFunction("main"), vm
}

func TestReader(t *testing.T) {
	exprs, err := Read(`(define (f x) (+ x 1)) ; comment
(define (main) (f 41))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 {
		t.Fatalf("got %d top-level forms", len(exprs))
	}
	if exprs[0].Head() != "define" {
		t.Errorf("head = %q", exprs[0].Head())
	}
	if exprs[0].String() != "(define (f x) (+ x 1))" {
		t.Errorf("round trip = %s", exprs[0])
	}
}

func TestReaderErrors(t *testing.T) {
	for _, src := range []string{"(", ")", "(define (f", `"unterminated`} {
		if _, err := Read(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestBasicArithmetic(t *testing.T) {
	v, _ := runScheme(t, `
(define (main)
  (+ 1 (* 2 3) (- 10 4) (quotient 17 5) (modulo 17 5)))
`, pylang.Config{})
	if v.I != 1+6+6+3+2 {
		t.Fatalf("result = %v", v)
	}
}

func TestTailRecursionAsLoop(t *testing.T) {
	v, vm := runScheme(t, `
(define (loop i n acc)
  (if (>= i n)
      acc
      (loop (+ i 1) n (+ acc i))))

(define (main) (loop 0 5000 0))
`, pylang.Config{JIT: true, Threshold: 13})
	if v.I != 5000*4999/2 {
		t.Fatalf("result = %v", v)
	}
	// The tail call must have become a hot loop that compiled.
	if vm.Eng.Stats().LoopsCompiled == 0 {
		t.Errorf("tail-recursive loop did not compile")
	}
}

func TestVectors(t *testing.T) {
	v, _ := runScheme(t, `
(define (fill v i n)
  (if (>= i n)
      v
      (begin
        (vector-set! v i (* i i))
        (fill v (+ i 1) n))))

(define (sum v i n acc)
  (if (>= i n)
      acc
      (sum v (+ i 1) n (+ acc (vector-ref v i)))))

(define (main)
  (let ((v (make-vector 10 0)))
    (fill v 0 10)
    (+ (sum v 0 10 0) (vector-length v))))
`, pylang.Config{})
	if v.I != 285+10 {
		t.Fatalf("result = %v", v)
	}
}

func TestLetScopingAndFloats(t *testing.T) {
	v, _ := runScheme(t, `
(define (main)
  (let ((x 2.0) (y 3.0))
    (let ((x (* x y)))
      (truncate (+ (* x 10.0) (sqrt 16.0))))))
`, pylang.Config{})
	if v.I != 64 {
		t.Fatalf("result = %v", v)
	}
}

func TestNonTailRecursion(t *testing.T) {
	v, _ := runScheme(t, `
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))

(define (main) (fib 15))
`, pylang.Config{})
	if v.I != 610 {
		t.Fatalf("fib = %v", v)
	}
}

func TestSchemeJITDifferential(t *testing.T) {
	src := `
(define (kernel i n a b)
  (if (>= i n)
      (+ a b)
      (if (= (modulo i 3) 0)
          (kernel (+ i 1) n (+ a i) b)
          (kernel (+ i 1) n a (+ b (* i 2))))))

(define (main) (kernel 0 8000 0 0))
`
	vi, _ := runScheme(t, src, pylang.Config{Profile: mtjit.CustomVMProfile()})
	vj, vmj := runScheme(t, src, pylang.Config{JIT: true, Threshold: 13, BridgeThreshold: 7})
	if !vi.Eq(vj) {
		t.Fatalf("JIT %v != interp %v", vj, vi)
	}
	if vmj.Eng.Stats().LoopsCompiled == 0 {
		t.Errorf("nothing compiled")
	}
}

func TestVectorSetReturnsUnspecified(t *testing.T) {
	v, _ := runScheme(t, `
(define (main)
  (let ((v (make-vector 2 7)))
    (begin (vector-set! v 0 1) (vector-ref v 0))))
`, pylang.Config{})
	if v.I != 1 {
		t.Fatalf("result = %v", v)
	}
}

func TestStringsAndDisplay(t *testing.T) {
	_, vm := runScheme(t, `
(define (main)
  (begin (display "hello" 42) (string-length "abcd")))
`, pylang.Config{})
	if got := vm.Output.String(); got != "hello 42\n" {
		t.Errorf("output = %q", got)
	}
}
