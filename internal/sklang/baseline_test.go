package sklang

import (
	"testing"

	"metajit/internal/pylang"
)

// TestBaselineTieredScheme runs a tail-recursive Scheme loop under the
// two-tier configuration: tier-1 code must engage on the self-tail-call
// merge point (the lowering is shared with the Python guest since both
// compile onto the same bytecode VM), the loop must still promote to a
// trace, and the result must match plain interpretation.
func TestBaselineTieredScheme(t *testing.T) {
	src := `
(define (loop i n acc)
  (if (>= i n)
      acc
      (loop (+ i 1) n (+ acc i))))

(define (main) (loop 0 5000 0))
`
	want, _ := runScheme(t, src, pylang.Config{})
	got, vm := runScheme(t, src, pylang.Config{
		JIT: true, Baseline: true,
		Threshold: 13, BaselineThreshold: 3,
	})
	if got.I != want.I {
		t.Fatalf("tiered result = %v, interp = %v", got, want)
	}
	st := vm.Eng.Stats()
	if st.BaselinesCompiled == 0 || st.BaselineEnters == 0 {
		t.Fatalf("baseline tier not engaged on Scheme guest: %+v", st)
	}
	if st.LoopsCompiled == 0 {
		t.Fatalf("tiered loop never promoted to a trace: %+v", st)
	}
	if err := vm.Eng.Validate(); err != nil {
		t.Fatalf("engine validation: %v", err)
	}
}
