// Package sklang implements the Scheme/Racket-like guest language: an
// s-expression front end compiled onto the shared guest bytecode VM. It
// plays the role of Racket/Pycket in the paper's two-language study.
//
// Loops are written as self tail calls; the compiler turns tail
// self-recursion into a jump back to the function entry, which is marked
// as a jit_merge_point — exactly how Pycket exposes application loops to
// the RPython meta-tracer.
package sklang

import (
	"fmt"
	"strconv"
	"strings"
)

// SExpr is an s-expression node: either an atom or a list.
type SExpr struct {
	Atom  string  // non-empty for atoms
	Num   bool    // atom parses as a number
	Int   int64   // integer value if IsInt
	Flt   float64 // float value if !IsInt and Num
	IsInt bool
	Str   bool // atom is a string literal (Atom holds the content)
	List  []*SExpr
}

// IsList reports whether the node is a list.
func (s *SExpr) IsList() bool { return s.Atom == "" && !s.Str }

// Head returns the first atom of a list, or "".
func (s *SExpr) Head() string {
	if s.IsList() && len(s.List) > 0 && !s.List[0].IsList() {
		return s.List[0].Atom
	}
	return ""
}

func (s *SExpr) String() string {
	if s.Str {
		return strconv.Quote(s.Atom)
	}
	if s.Atom != "" {
		return s.Atom
	}
	parts := make([]string, len(s.List))
	for i, e := range s.List {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Read parses a sequence of top-level s-expressions.
func Read(src string) ([]*SExpr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var out []*SExpr
	pos := 0
	for pos < len(toks) {
		e, n, err := parseSExpr(toks, pos)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		pos = n
	}
	return out, nil
}

type sTok struct {
	text string
	str  bool
}

func tokenize(src string) ([]sTok, error) {
	var toks []sTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')':
			toks = append(toks, sTok{text: string(c)})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					switch src[j+1] {
					case 'n':
						sb.WriteByte('\n')
					default:
						sb.WriteByte(src[j+1])
					}
					j += 2
					continue
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sklang: unterminated string")
			}
			toks = append(toks, sTok{text: sb.String(), str: true})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r();\"", rune(src[j])) {
				j++
			}
			toks = append(toks, sTok{text: src[i:j]})
			i = j
		}
	}
	return toks, nil
}

func parseSExpr(toks []sTok, pos int) (*SExpr, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("sklang: unexpected end of input")
	}
	t := toks[pos]
	if t.str {
		return &SExpr{Atom: t.text, Str: true}, pos + 1, nil
	}
	switch t.text {
	case "(":
		pos++
		node := &SExpr{}
		for {
			if pos >= len(toks) {
				return nil, pos, fmt.Errorf("sklang: missing )")
			}
			if toks[pos].text == ")" && !toks[pos].str {
				return node, pos + 1, nil
			}
			child, n, err := parseSExpr(toks, pos)
			if err != nil {
				return nil, n, err
			}
			node.List = append(node.List, child)
			pos = n
		}
	case ")":
		return nil, pos, fmt.Errorf("sklang: unexpected )")
	default:
		node := &SExpr{Atom: t.text}
		if v, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			node.Num, node.IsInt, node.Int = true, true, v
		} else if f, err := strconv.ParseFloat(t.text, 64); err == nil {
			node.Num, node.Flt = true, f
		}
		return node, pos + 1, nil
	}
}
