package sklang

import (
	"fmt"

	"metajit/internal/heap"
	"metajit/internal/mtjit"
	"metajit/internal/pylang"
)

// Load reads and compiles a program's top-level definitions into the VM.
func Load(vm *pylang.VM, src string) error {
	exprs, err := Read(src)
	if err != nil {
		return err
	}
	registerSchemeBuiltins(vm)
	for _, e := range exprs {
		if e.Head() != "define" {
			return fmt.Errorf("sklang: only top-level defines are supported, got %s", e)
		}
		if len(e.List) < 3 || !e.List[1].IsList() || len(e.List[1].List) == 0 {
			return fmt.Errorf("sklang: bad define %s", e)
		}
		sig := e.List[1]
		name := sig.List[0].Atom
		params := make([]string, 0, len(sig.List)-1)
		for _, p := range sig.List[1:] {
			params = append(params, p.Atom)
		}
		fc := &fnCompiler{
			vm:     vm,
			name:   name,
			params: params,
			env:    []map[string]int{{}},
		}
		fc.code = vm.NewCodeForFrontend(name, len(params))
		for _, p := range params {
			fc.bind(p)
		}
		body := e.List[2:]
		for i, b := range body {
			if err := fc.expr(b, i == len(body)-1); err != nil {
				return err
			}
			if i != len(body)-1 {
				fc.emit(pylang.BCPop, 0)
			}
		}
		fc.emit(pylang.BCReturn, 0)
		fc.code.NumLocals = fc.nLocals
		fc.code.Headers = make([]bool, len(fc.code.Instrs))
		if fc.hasTailSelf {
			fc.code.Headers[0] = true
		}
		vm.DefineFunctionGlobal(name, fc.code)
	}
	return nil
}

type fnCompiler struct {
	vm          *pylang.VM
	code        *pylang.Code
	name        string
	params      []string
	env         []map[string]int
	nLocals     int
	hasTailSelf bool
}

func (c *fnCompiler) emit(op pylang.BC, arg int32) int {
	c.code.Instrs = append(c.code.Instrs, pylang.Instr{Op: op, Arg: arg})
	return len(c.code.Instrs) - 1
}

func (c *fnCompiler) patch(at, target int) { c.code.Instrs[at].Arg = int32(target) }

func (c *fnCompiler) here() int { return len(c.code.Instrs) }

func (c *fnCompiler) constIdx(v heap.Value) int32 {
	for i, cv := range c.code.Consts {
		if cv.Eq(v) {
			return int32(i)
		}
	}
	c.code.Consts = append(c.code.Consts, v)
	return int32(len(c.code.Consts) - 1)
}

func (c *fnCompiler) nameIdx(n string) int32 {
	for i, s := range c.code.Names {
		if s == n {
			return int32(i)
		}
	}
	c.code.Names = append(c.code.Names, n)
	return int32(len(c.code.Names) - 1)
}

func (c *fnCompiler) bind(name string) int {
	i := c.nLocals
	c.nLocals++
	c.env[len(c.env)-1][name] = i
	return i
}

func (c *fnCompiler) lookup(name string) (int, bool) {
	for i := len(c.env) - 1; i >= 0; i-- {
		if idx, ok := c.env[i][name]; ok {
			return idx, true
		}
	}
	return 0, false
}

var binOps = map[string]pylang.BinKind{
	"modulo": pylang.BinMod, "quotient": pylang.BinFloorDiv,
	"remainder": pylang.BinMod, "expt": pylang.BinPow, "/": pylang.BinTrueDiv,
}

var cmpOps = map[string]pylang.CmpKind{
	"=": pylang.CmpEq, "<": pylang.CmpLt, "<=": pylang.CmpLe,
	">": pylang.CmpGt, ">=": pylang.CmpGe,
}

func (c *fnCompiler) expr(e *SExpr, tail bool) error {
	// Atoms.
	if e.Str {
		c.emit(pylang.BCLoadConst, c.constIdx(heap.RefVal(c.vm.Intern(e.Atom))))
		return nil
	}
	if e.Atom != "" {
		if e.Num {
			if e.IsInt {
				c.emit(pylang.BCLoadConst, c.constIdx(heap.IntVal(e.Int)))
			} else {
				c.emit(pylang.BCLoadConst, c.constIdx(heap.FloatVal(e.Flt)))
			}
			return nil
		}
		switch e.Atom {
		case "#t":
			c.emit(pylang.BCLoadConst, c.constIdx(heap.True))
			return nil
		case "#f":
			c.emit(pylang.BCLoadConst, c.constIdx(heap.False))
			return nil
		}
		if idx, ok := c.lookup(e.Atom); ok {
			c.emit(pylang.BCLoadLocal, int32(idx))
		} else {
			c.emit(pylang.BCLoadGlobal, c.nameIdx(e.Atom))
		}
		return nil
	}
	if len(e.List) == 0 {
		return fmt.Errorf("sklang: empty form")
	}
	head := e.Head()
	args := e.List[1:]

	switch head {
	case "if":
		if len(args) < 2 || len(args) > 3 {
			return fmt.Errorf("sklang: bad if %s", e)
		}
		if err := c.expr(args[0], false); err != nil {
			return err
		}
		jElse := c.emit(pylang.BCPopJumpIfFalse, 0)
		if err := c.expr(args[1], tail); err != nil {
			return err
		}
		jEnd := c.emit(pylang.BCJump, 0)
		c.patch(jElse, c.here())
		if len(args) == 3 {
			if err := c.expr(args[2], tail); err != nil {
				return err
			}
		} else {
			c.emit(pylang.BCLoadConst, c.constIdx(heap.Nil))
		}
		c.patch(jEnd, c.here())
		return nil

	case "begin":
		if len(args) == 0 {
			c.emit(pylang.BCLoadConst, c.constIdx(heap.Nil))
			return nil
		}
		for i, a := range args {
			if err := c.expr(a, tail && i == len(args)-1); err != nil {
				return err
			}
			if i != len(args)-1 {
				c.emit(pylang.BCPop, 0)
			}
		}
		return nil

	case "let":
		if len(args) < 2 || !args[0].IsList() {
			return fmt.Errorf("sklang: bad let %s", e)
		}
		binds := args[0].List
		// Evaluate all inits in the outer scope, then bind.
		for _, b := range binds {
			if !b.IsList() || len(b.List) != 2 {
				return fmt.Errorf("sklang: bad let binding %s", b)
			}
			if err := c.expr(b.List[1], false); err != nil {
				return err
			}
		}
		c.env = append(c.env, map[string]int{})
		idxs := make([]int, len(binds))
		for i, b := range binds {
			idxs[i] = c.bind(b.List[0].Atom)
		}
		for i := len(binds) - 1; i >= 0; i-- {
			c.emit(pylang.BCStoreLocal, int32(idxs[i]))
		}
		body := args[1:]
		for i, b := range body {
			if err := c.expr(b, tail && i == len(body)-1); err != nil {
				return err
			}
			if i != len(body)-1 {
				c.emit(pylang.BCPop, 0)
			}
		}
		c.env = c.env[:len(c.env)-1]
		return nil

	case "set!":
		if len(args) != 2 {
			return fmt.Errorf("sklang: bad set! %s", e)
		}
		if err := c.expr(args[1], false); err != nil {
			return err
		}
		if idx, ok := c.lookup(args[0].Atom); ok {
			c.emit(pylang.BCStoreLocal, int32(idx))
		} else {
			c.emit(pylang.BCStoreGlobal, c.nameIdx(args[0].Atom))
		}
		c.emit(pylang.BCLoadConst, c.constIdx(heap.Nil))
		return nil

	case "+", "-", "*":
		if len(args) == 0 {
			return fmt.Errorf("sklang: %s needs arguments", head)
		}
		kind := pylang.BinAdd
		switch head {
		case "-":
			kind = pylang.BinSub
		case "*":
			kind = pylang.BinMul
		}
		if head == "-" && len(args) == 1 {
			if err := c.expr(args[0], false); err != nil {
				return err
			}
			c.emit(pylang.BCUnaryNeg, 0)
			return nil
		}
		if err := c.expr(args[0], false); err != nil {
			return err
		}
		for _, a := range args[1:] {
			if err := c.expr(a, false); err != nil {
				return err
			}
			c.emit(pylang.BCBinary, int32(kind))
		}
		return nil

	case "not":
		if err := c.expr(args[0], false); err != nil {
			return err
		}
		c.emit(pylang.BCUnaryNot, 0)
		return nil

	case "vector":
		for _, a := range args {
			if err := c.expr(a, false); err != nil {
				return err
			}
		}
		c.emit(pylang.BCBuildList, int32(len(args)))
		return nil

	case "vector-ref":
		if err := c.binArgs(args, 2, e); err != nil {
			return err
		}
		c.emit(pylang.BCIndex, 0)
		return nil

	case "vector-set!":
		if len(args) != 3 {
			return fmt.Errorf("sklang: bad vector-set! %s", e)
		}
		for _, a := range args {
			if err := c.expr(a, false); err != nil {
				return err
			}
		}
		c.emit(pylang.BCStoreIndex, 0)
		c.emit(pylang.BCLoadConst, c.constIdx(heap.Nil))
		return nil

	case "vector-length", "string-length":
		if err := c.expr(args[0], false); err != nil {
			return err
		}
		c.emit(pylang.BCLen, 0)
		return nil
	}

	if kind, ok := binOps[head]; ok {
		if err := c.binArgs(args, 2, e); err != nil {
			return err
		}
		c.emit(pylang.BCBinary, int32(kind))
		return nil
	}
	if kind, ok := cmpOps[head]; ok {
		if err := c.binArgs(args, 2, e); err != nil {
			return err
		}
		c.emit(pylang.BCCompare, int32(kind))
		return nil
	}

	// Renamed builtins.
	callee := head
	switch head {
	case "display":
		callee = "print"
	case "truncate":
		callee = "int"
	}

	// Tail self call becomes a jump to the function entry (the
	// jit_merge_point).
	if tail && head == c.name && len(args) == len(c.params) {
		for _, a := range args {
			if err := c.expr(a, false); err != nil {
				return err
			}
		}
		for i := len(args) - 1; i >= 0; i-- {
			c.emit(pylang.BCStoreLocal, int32(i))
		}
		c.emit(pylang.BCJump, 0)
		c.hasTailSelf = true
		// Balance the expression stack for the dead fall-through path.
		c.emit(pylang.BCLoadConst, c.constIdx(heap.Nil))
		return nil
	}

	// Ordinary call.
	if idx, ok := c.lookup(callee); ok {
		c.emit(pylang.BCLoadLocal, int32(idx))
	} else {
		c.emit(pylang.BCLoadGlobal, c.nameIdx(callee))
	}
	for _, a := range args {
		if err := c.expr(a, false); err != nil {
			return err
		}
	}
	c.emit(pylang.BCCall, int32(len(args)))
	return nil
}

func (c *fnCompiler) binArgs(args []*SExpr, n int, e *SExpr) error {
	if len(args) != n {
		return fmt.Errorf("sklang: wrong arity in %s", e)
	}
	for _, a := range args {
		if err := c.expr(a, false); err != nil {
			return err
		}
	}
	return nil
}

// registerSchemeBuiltins installs Scheme-specific native procedures.
func registerSchemeBuiltins(vm *pylang.VM) {
	vm.DefineGlobalBuiltin("make-vector", func(vm *pylang.VM, m mtjit.Machine, args []mtjit.TV) mtjit.TV {
		if len(args) < 1 || len(args) > 2 {
			panic("sklang: make-vector takes 1-2 arguments")
		}
		n := int(args[0].V.I)
		init := mtjit.Concrete(heap.IntVal(0))
		if len(args) == 2 {
			init = args[1]
		}
		v := m.NewArray(vm.ListShape, 0, n)
		for i := 0; i < n; i++ {
			m.SetElem(v, m.Const(heap.IntVal(int64(i))), init)
		}
		return v
	})
}
