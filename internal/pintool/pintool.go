// Package pintool implements the paper's interception side: tools that
// observe cross-layer annotations at the machine level, as the custom
// PinTool of Section IV does with tagged nop instructions.
//
// Tools are cpu observers. PhaseTracker reconstructs the framework phase
// (Figures 2-4, Table IV), WorkMeter measures bytecode rate for warmup
// curves (Figure 5), AOTAttributor attributes JIT-call time to AOT entry
// points (Table III), and IRProfiler aggregates per-trace IR statistics
// (Figures 6-9) together with internal/jitlog.
package pintool

import (
	"metajit/internal/core"
	"metajit/internal/cpu"
)

// PhaseTracker reconstructs the phase stack from phase-boundary
// annotations and drives the machine's accounting domain.
type PhaseTracker struct {
	m     *cpu.Machine
	stack []core.Phase
	cur   core.Phase

	// Transitions counts phase switches (diagnostics).
	Transitions uint64
}

// NewPhaseTracker attaches a phase tracker to m.
func NewPhaseTracker(m *cpu.Machine) *PhaseTracker {
	t := &PhaseTracker{m: m, cur: core.PhaseInterp}
	m.Observe(t)
	return t
}

func (t *PhaseTracker) push(p core.Phase) {
	t.stack = append(t.stack, t.cur)
	t.cur = p
	t.m.SetPhase(p)
	t.Transitions++
}

func (t *PhaseTracker) pop() {
	if n := len(t.stack); n > 0 {
		t.cur = t.stack[n-1]
		t.stack = t.stack[:n-1]
	} else {
		t.cur = core.PhaseInterp
	}
	t.m.SetPhase(t.cur)
	t.Transitions++
}

// OnAnnotation implements core.Observer.
func (t *PhaseTracker) OnAnnotation(a core.Annotation, _, _ uint64) {
	switch a.Tag {
	case core.TagTraceStart:
		t.push(core.PhaseTracing)
	case core.TagTraceEnd, core.TagTraceAbort:
		t.pop()
	case core.TagJITEnter:
		t.push(core.PhaseJIT)
	case core.TagJITLeave:
		t.pop()
	case core.TagAOTCallEnter:
		t.push(core.PhaseJITCall)
	case core.TagAOTCallLeave:
		t.pop()
	case core.TagGCMinorStart, core.TagGCMajorStart:
		t.push(core.PhaseGC)
	case core.TagGCMinorEnd, core.TagGCMajorEnd:
		t.pop()
	case core.TagBlackholeEnter:
		t.push(core.PhaseBlackhole)
	case core.TagBlackholeLeave:
		t.pop()
	case core.TagBaselineCompileStart:
		t.push(core.PhaseBaselineComp)
	case core.TagBaselineCompileEnd:
		t.pop()
	case core.TagBaselineEnter:
		t.push(core.PhaseBaseline)
	case core.TagBaselineLeave:
		t.pop()
	case core.TagMethodCompileStart:
		t.push(core.PhaseMethodComp)
	case core.TagMethodCompileEnd:
		t.pop()
	case core.TagMethodEnter:
		t.push(core.PhaseMethod)
	case core.TagMethodLeave:
		t.pop()
	}
}

// Current returns the phase being attributed now.
func (t *PhaseTracker) Current() core.Phase { return t.cur }

// Sample is one point of a time series: machine totals plus work done.
type Sample struct {
	Instrs    uint64
	Cycles    uint64
	Bytecodes uint64
	// PhaseInstrs snapshots per-phase instruction counts (Figure 3's
	// phase timeline).
	PhaseInstrs [core.NumPhases]uint64
}

// WorkMeter counts guest bytecodes from dispatch annotations — the
// layer-independent measure of work of Section IV — and records samples at
// a fixed instruction interval for warmup curves and phase timelines.
type WorkMeter struct {
	m *cpu.Machine

	Bytecodes uint64
	Samples   []Sample

	interval   uint64
	nextSample uint64
}

// NewWorkMeter attaches a work meter sampling every interval instructions
// (0 disables sampling).
func NewWorkMeter(m *cpu.Machine, interval uint64) *WorkMeter {
	w := &WorkMeter{m: m, interval: interval, nextSample: interval}
	m.Observe(w)
	return w
}

// OnAnnotation implements core.Observer.
func (w *WorkMeter) OnAnnotation(a core.Annotation, instrs, cycles uint64) {
	if a.Tag != core.TagDispatch {
		return
	}
	w.Bytecodes += a.Arg
	if w.interval != 0 && instrs >= w.nextSample {
		s := Sample{Instrs: instrs, Cycles: cycles, Bytecodes: w.Bytecodes}
		for p := core.Phase(0); p < core.NumPhases; p++ {
			s.PhaseInstrs[p] = w.m.PhaseCounters(p).Instrs
		}
		w.Samples = append(w.Samples, s)
		for w.nextSample <= instrs {
			w.nextSample += w.interval
		}
	}
}

// AOTAttributor accumulates cycles spent in AOT-compiled functions called
// from JIT code, keyed by function ID (Table III). Nested AOT calls
// attribute to the outermost entry point, matching the paper ("time spent
// in called functions is counted as part of these entry points").
type AOTAttributor struct {
	m *cpu.Machine

	// CyclesByFunc maps AOT function ID to cycles attributed.
	CyclesByFunc map[uint32]float64
	// CallsByFunc counts calls per function.
	CallsByFunc map[uint32]uint64

	depth      int
	curFunc    uint32
	enterCycle uint64
}

// NewAOTAttributor attaches an attributor to m.
func NewAOTAttributor(m *cpu.Machine) *AOTAttributor {
	a := &AOTAttributor{
		m:            m,
		CyclesByFunc: map[uint32]float64{},
		CallsByFunc:  map[uint32]uint64{},
	}
	m.Observe(a)
	return a
}

// OnAnnotation implements core.Observer.
func (a *AOTAttributor) OnAnnotation(an core.Annotation, instrs, cycles uint64) {
	switch an.Tag {
	case core.TagAOTCallEnter:
		if a.depth == 0 {
			a.curFunc = uint32(an.Arg)
			a.enterCycle = cycles
			a.CallsByFunc[a.curFunc]++
		}
		a.depth++
	case core.TagAOTCallLeave:
		a.depth--
		if a.depth == 0 {
			a.CyclesByFunc[a.curFunc] += float64(cycles - a.enterCycle)
		}
		if a.depth < 0 {
			a.depth = 0
		}
	}
}

// TraceEventCounter tallies JIT lifecycle events (compilations, aborts,
// guard failures, bridge entries) for reporting.
type TraceEventCounter struct {
	Compiled     uint64
	Aborts       uint64
	GuardFails   uint64
	BridgeEnters uint64
	MinorGCs     uint64
	MajorGCs     uint64
	Deopts       uint64 // blackhole entries

	// Tier-1 (baseline) lifecycle events.
	BaselineCompiles uint64
	BaselineEnters   uint64
	BaselineDeopts   uint64

	// Tier-2 (method) lifecycle events.
	MethodCompiles uint64
	MethodEnters   uint64
	MethodDeopts   uint64
}

// NewTraceEventCounter attaches a counter to m.
func NewTraceEventCounter(m *cpu.Machine) *TraceEventCounter {
	c := &TraceEventCounter{}
	m.Observe(core.ObserverFunc(func(a core.Annotation, _, _ uint64) {
		switch a.Tag {
		case core.TagTraceCompiled:
			c.Compiled++
		case core.TagTraceAbort:
			c.Aborts++
		case core.TagGuardFail:
			c.GuardFails++
		case core.TagBridgeEnter:
			c.BridgeEnters++
		case core.TagGCMinorStart:
			c.MinorGCs++
		case core.TagGCMajorStart:
			c.MajorGCs++
		case core.TagBlackholeEnter:
			c.Deopts++
		case core.TagBaselineCompileEnd:
			c.BaselineCompiles++
		case core.TagBaselineEnter:
			c.BaselineEnters++
		case core.TagBaselineDeopt:
			c.BaselineDeopts++
		case core.TagMethodCompileEnd:
			c.MethodCompiles++
		case core.TagMethodEnter:
			c.MethodEnters++
		case core.TagMethodDeopt:
			c.MethodDeopts++
		}
	}))
	return c
}
