package pintool

import (
	"testing"

	"metajit/internal/core"
	"metajit/internal/cpu"
	"metajit/internal/isa"
)

func TestPhaseTrackerNesting(t *testing.T) {
	m := cpu.NewDefault()
	tr := NewPhaseTracker(m)

	emit := func(tag core.Tag, n int) {
		m.Annot(tag, 0)
		m.Ops(isa.ALU, n)
	}
	m.Ops(isa.ALU, 100) // interp
	emit(core.TagJITEnter, 50)
	if tr.Current() != core.PhaseJIT {
		t.Fatalf("phase = %v after JITEnter", tr.Current())
	}
	// GC interrupts JIT; after it ends we must be back in JIT.
	emit(core.TagGCMinorStart, 30)
	if tr.Current() != core.PhaseGC {
		t.Fatalf("phase = %v during GC", tr.Current())
	}
	emit(core.TagGCMinorEnd, 0)
	if tr.Current() != core.PhaseJIT {
		t.Fatalf("phase = %v after GC end (stack broken)", tr.Current())
	}
	emit(core.TagAOTCallEnter, 40)
	emit(core.TagAOTCallLeave, 20)
	emit(core.TagJITLeave, 0)
	if tr.Current() != core.PhaseInterp {
		t.Fatalf("phase = %v after JITLeave", tr.Current())
	}

	if got := m.PhaseCounters(core.PhaseGC).Instrs; got < 30 {
		t.Errorf("GC instrs = %d", got)
	}
	if got := m.PhaseCounters(core.PhaseJITCall).Instrs; got < 40 {
		t.Errorf("JITCall instrs = %d", got)
	}
	if tr.Transitions == 0 {
		t.Errorf("no transitions recorded")
	}
}

func TestPhaseTrackerUnderflowSafe(t *testing.T) {
	m := cpu.NewDefault()
	tr := NewPhaseTracker(m)
	// A stray leave must not panic and must land in interp.
	m.Annot(core.TagJITLeave, 0)
	if tr.Current() != core.PhaseInterp {
		t.Fatalf("phase = %v after stray pop", tr.Current())
	}
}

func TestWorkMeterCountsAndSamples(t *testing.T) {
	m := cpu.NewDefault()
	w := NewWorkMeter(m, 1000)
	for i := 0; i < 100; i++ {
		m.Ops(isa.ALU, 50)
		m.Annot(core.TagDispatch, 3)
	}
	if w.Bytecodes != 300 {
		t.Fatalf("bytecodes = %d, want 300", w.Bytecodes)
	}
	if len(w.Samples) < 3 {
		t.Fatalf("samples = %d; sampling broken", len(w.Samples))
	}
	for i := 1; i < len(w.Samples); i++ {
		if w.Samples[i].Instrs <= w.Samples[i-1].Instrs {
			t.Errorf("samples not monotonic")
		}
		if w.Samples[i].Bytecodes < w.Samples[i-1].Bytecodes {
			t.Errorf("bytecode counts not monotonic")
		}
	}
}

func TestWorkMeterNoSampling(t *testing.T) {
	m := cpu.NewDefault()
	w := NewWorkMeter(m, 0)
	m.Annot(core.TagDispatch, 1)
	if len(w.Samples) != 0 {
		t.Errorf("interval 0 must not sample")
	}
	if w.Bytecodes != 1 {
		t.Errorf("bytecodes = %d", w.Bytecodes)
	}
}

func TestAOTAttributorNestedCalls(t *testing.T) {
	m := cpu.NewDefault()
	a := NewAOTAttributor(m)
	m.Annot(core.TagAOTCallEnter, 7)
	m.Ops(isa.ALU, 1000)
	// Nested call: time attributes to the OUTER entry point (fn 7), as
	// in the paper's Table III methodology.
	m.Annot(core.TagAOTCallEnter, 9)
	m.Ops(isa.ALU, 2000)
	m.Annot(core.TagAOTCallLeave, 9)
	m.Annot(core.TagAOTCallLeave, 7)

	if a.CallsByFunc[7] != 1 {
		t.Errorf("outer calls = %d", a.CallsByFunc[7])
	}
	if a.CallsByFunc[9] != 0 {
		t.Errorf("nested call counted separately: %d", a.CallsByFunc[9])
	}
	if a.CyclesByFunc[7] <= 0 {
		t.Errorf("no cycles attributed to outer")
	}
	if a.CyclesByFunc[9] != 0 {
		t.Errorf("cycles attributed to nested entry")
	}
}

func TestTraceEventCounter(t *testing.T) {
	m := cpu.NewDefault()
	c := NewTraceEventCounter(m)
	m.Annot(core.TagTraceCompiled, 1)
	m.Annot(core.TagGuardFail, 5)
	m.Annot(core.TagGuardFail, 5)
	m.Annot(core.TagBridgeEnter, 2)
	m.Annot(core.TagBlackholeEnter, 5)
	m.Annot(core.TagGCMinorStart, 0)
	m.Annot(core.TagGCMajorStart, 0)
	m.Annot(core.TagTraceAbort, 1)
	if c.Compiled != 1 || c.GuardFails != 2 || c.BridgeEnters != 1 ||
		c.Deopts != 1 || c.MinorGCs != 1 || c.MajorGCs != 1 || c.Aborts != 1 {
		t.Errorf("counter state wrong: %+v", c)
	}
}
