package isa

import "sync/atomic"

// Synthetic program counters. Branch predictors and BTBs are indexed by PC,
// so every static emission site (a bytecode handler's dispatch branch, a
// guard inside a lowered trace, an AOT function's inner-loop branch) needs a
// stable synthetic address. Regions keep the address spaces of different
// components apart, mimicking a process layout: the VM binary's text
// section, the JIT code area, and the simulated heap.
const (
	// RegionVMText holds PCs of the interpreter, runtime, and AOT
	// functions (the "binary" of the VM).
	RegionVMText uint64 = 0x0040_0000
	// RegionJITCode holds PCs of lowered traces and bridges.
	RegionJITCode uint64 = 0x7f00_0000_0000
	// RegionHeap is the base of simulated guest heap addresses.
	RegionHeap uint64 = 0x1000_0000_0000
	// RegionStack is the base of simulated VM-stack addresses (frames,
	// value stacks).
	RegionStack uint64 = 0x7fff_0000_0000
	// RegionStatic holds PCs for statically-compiled (C-analog) kernels.
	RegionStatic uint64 = 0x0100_0000
)

// PCAlloc hands out non-overlapping PC ranges within a region.
type PCAlloc struct {
	next atomic.Uint64
}

// NewPCAlloc returns an allocator starting at base.
func NewPCAlloc(base uint64) *PCAlloc {
	a := &PCAlloc{}
	a.next.Store(base)
	return a
}

// Take reserves n bytes of PC space and returns the range's base.
func (a *PCAlloc) Take(n uint64) uint64 {
	return a.next.Add(n) - n
}

// Site is a convenience for a single static emission site: a stable PC for
// one branch or call instruction.
type Site uint64

// VMText is the shared allocator for VM-binary PCs. Sites are allocated at
// package init time across the codebase; 16 bytes per site keeps aliasing
// in predictor tables realistic but rare.
var VMText = NewPCAlloc(RegionVMText)

// RegionVMTextDyn is the base of per-run dynamic VM-text allocations
// (module code objects, AOT entry points, per-engine and per-recorder
// sites). It sits above the package-init site area of RegionVMText and
// below RegionStatic.
const RegionVMTextDyn = RegionVMText + 0x40_0000

// NewRunAlloc returns a fresh VM-text allocator for one simulated machine.
// Runtime PC allocations must come from a per-run allocator rather than
// the shared VMText so that a run's PC layout is a deterministic function
// of the run itself, never of what other runs (possibly on other
// goroutines) allocated first; identical PCs across runs never collide
// because each run has its own predictors and caches.
func NewRunAlloc() *PCAlloc { return NewPCAlloc(RegionVMTextDyn) }

// NewSite reserves a stable VM-text PC for one static branch site.
func NewSite() Site { return Site(VMText.Take(16)) }

// Site reserves a branch-site PC from this allocator.
func (a *PCAlloc) Site() Site { return Site(a.Take(16)) }

// PC returns the site's program counter.
func (s Site) PC() uint64 { return uint64(s) }
