// Package isa defines the synthetic instruction-set architecture that every
// layer of the simulated VM stack emits into, and that the CPU model in
// internal/cpu consumes.
//
// The paper measures real x86 executions with Pin and performance counters.
// This reproduction has no hardware access, so instead each component — the
// reference interpreter, the framework interpreter, the meta-interpreter,
// AOT-compiled runtime functions, the garbage collector, and JIT-compiled
// traces — emits a stream of synthetic instructions as it executes. The
// stream preserves what the microarchitecture model needs: instruction
// class mix, branch program counters and outcomes (for branch prediction),
// memory addresses (for the cache model), and tagged nop instructions
// carrying cross-layer annotations.
package isa

import "metajit/internal/core"

// Class is a synthetic instruction class. The CPU model assigns issue cost
// and hazards per class.
type Class uint8

// Instruction classes.
const (
	ALU          Class = iota // integer ALU op (add, sub, cmp, logic, lea)
	Mul                       // integer multiply
	Div                       // integer divide (long latency)
	FPU                       // floating-point add/sub/cmp/convert
	FMul                      // floating-point multiply
	FDiv                      // floating-point divide / sqrt (long latency)
	Load                      // memory load
	Store                     // memory store
	Branch                    // conditional direct branch
	Jump                      // unconditional direct jump
	IndirectJump              // indirect jump (interpreter dispatch)
	Call                      // direct call
	IndirectCall              // indirect call
	Ret                       // return
	Nop                       // annotation carrier
	NumClasses
)

var classNames = [NumClasses]string{
	"alu", "mul", "div", "fpu", "fmul", "fdiv", "load", "store",
	"branch", "jump", "ijump", "call", "icall", "ret", "nop",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// IsBranch reports whether the class goes through branch prediction.
func (c Class) IsBranch() bool {
	switch c {
	case Branch, Jump, IndirectJump, Call, IndirectCall, Ret:
		return true
	}
	return false
}

// ClassCount is one (class, count) component of a Block.
type ClassCount struct {
	Class Class
	N     uint32
}

// CC builds a ClassCount; it exists so Block construction sites stay
// one-line: isa.NewBlock(isa.CC(isa.ALU, 3), isa.CC(isa.Store, 2)).
func CC(c Class, n int) ClassCount { return ClassCount{Class: c, N: uint32(n)} }

// Block is a precomputed mix of straight-line instructions retired
// through one Stream.Block call instead of one Ops call per class. Hot
// emitters (dispatch loops, guest-call overhead, trace-exit stubs) build
// their fixed mixes once and retire them with a single dynamic call —
// the host-side analogue of threaded code replacing switch dispatch.
//
// Blocks carry no predicted-branch classes and no addresses: loads and
// stores in a block are class-accounted only, exactly like Ops(Load, n),
// and unconditional direct jumps are allowed because they carry no
// predictor state. Zero counts are dropped at construction.
type Block struct {
	Mix   []ClassCount
	Total uint64
}

// NewBlock builds a Block from its components, panicking on classes that
// need per-instruction outcomes or predictor/RAS state (those must go
// through the dedicated Stream methods).
func NewBlock(mix ...ClassCount) *Block {
	b := &Block{}
	for _, cc := range mix {
		if cc.Class.IsBranch() && cc.Class != Jump {
			panic("isa: predicted class " + cc.Class.String() + " in Block")
		}
		if cc.N == 0 {
			continue
		}
		b.Mix = append(b.Mix, cc)
		b.Total += uint64(cc.N)
	}
	return b
}

// Stream is the instruction sink every simulated component emits into.
// internal/cpu.Machine is the canonical implementation; tests use
// CountingStream.
type Stream interface {
	// Ops retires n straight-line instructions of class c. c must not be
	// a branch class.
	Ops(c Class, n int)
	// Block retires a precomputed straight-line instruction mix in one
	// call (see Block).
	Block(b *Block)
	// Load retires one load from the simulated address addr.
	Load(addr uint64)
	// Store retires one store to the simulated address addr.
	Store(addr uint64)
	// Branch retires a conditional direct branch at pc with the given
	// outcome.
	Branch(pc uint64, taken bool)
	// Indirect retires an indirect jump at pc to target (interpreter
	// dispatch, vtable dispatch).
	Indirect(pc, target uint64)
	// CallDirect retires a direct call at pc (pushes the return-address
	// stack).
	CallDirect(pc uint64)
	// CallIndirect retires an indirect call at pc to target.
	CallIndirect(pc, target uint64)
	// Return retires a return (pops the return-address stack).
	Return()
	// Annot retires a tagged nop carrying a cross-layer annotation.
	Annot(tag core.Tag, arg uint64)
}

// CountingStream is a minimal Stream that tallies instruction classes and
// records annotations; used in unit tests and by cost-model calibration.
type CountingStream struct {
	Counts      [NumClasses]uint64
	Taken       uint64
	Annotations []core.Annotation
}

var _ Stream = (*CountingStream)(nil)

// Total returns the total number of retired instructions.
func (s *CountingStream) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Ops implements Stream.
func (s *CountingStream) Ops(c Class, n int) { s.Counts[c] += uint64(n) }

// Block implements Stream.
func (s *CountingStream) Block(b *Block) {
	for _, cc := range b.Mix {
		s.Counts[cc.Class] += uint64(cc.N)
	}
}

// Load implements Stream.
func (s *CountingStream) Load(addr uint64) { s.Counts[Load]++ }

// Store implements Stream.
func (s *CountingStream) Store(addr uint64) { s.Counts[Store]++ }

// Branch implements Stream.
func (s *CountingStream) Branch(pc uint64, taken bool) {
	s.Counts[Branch]++
	if taken {
		s.Taken++
	}
}

// Indirect implements Stream.
func (s *CountingStream) Indirect(pc, target uint64) { s.Counts[IndirectJump]++ }

// CallDirect implements Stream.
func (s *CountingStream) CallDirect(pc uint64) { s.Counts[Call]++ }

// CallIndirect implements Stream.
func (s *CountingStream) CallIndirect(pc, target uint64) { s.Counts[IndirectCall]++ }

// Return implements Stream.
func (s *CountingStream) Return() { s.Counts[Ret]++ }

// Annot implements Stream.
func (s *CountingStream) Annot(tag core.Tag, arg uint64) {
	s.Counts[Nop]++
	s.Annotations = append(s.Annotations, core.Annotation{Tag: tag, Arg: arg})
}
