package isa

import (
	"testing"

	"metajit/internal/core"
)

func TestClassString(t *testing.T) {
	if ALU.String() != "alu" || IndirectJump.String() != "ijump" {
		t.Errorf("class names wrong: %s %s", ALU, IndirectJump)
	}
	if Class(200).String() != "class?" {
		t.Errorf("out-of-range class name")
	}
}

func TestIsBranch(t *testing.T) {
	branchy := []Class{Branch, Jump, IndirectJump, Call, IndirectCall, Ret}
	for _, c := range branchy {
		if !c.IsBranch() {
			t.Errorf("%s should be a branch", c)
		}
	}
	for _, c := range []Class{ALU, Load, Store, Nop, FPU} {
		if c.IsBranch() {
			t.Errorf("%s should not be a branch", c)
		}
	}
}

func TestCountingStream(t *testing.T) {
	var s CountingStream
	s.Ops(ALU, 3)
	s.Load(0x1000)
	s.Store(0x1008)
	s.Branch(0x400000, true)
	s.Branch(0x400004, false)
	s.Indirect(0x400008, 0x500000)
	s.CallDirect(0x40000c)
	s.CallIndirect(0x400010, 0x500040)
	s.Return()
	s.Annot(core.TagDispatch, 1)

	if s.Counts[ALU] != 3 || s.Counts[Load] != 1 || s.Counts[Store] != 1 {
		t.Errorf("counts wrong: %+v", s.Counts)
	}
	if s.Counts[Branch] != 2 || s.Taken != 1 {
		t.Errorf("branch counts wrong: %d taken %d", s.Counts[Branch], s.Taken)
	}
	if s.Total() != 12 {
		t.Errorf("Total = %d, want 12", s.Total())
	}
	if len(s.Annotations) != 1 || s.Annotations[0].Tag != core.TagDispatch {
		t.Errorf("annotations wrong: %+v", s.Annotations)
	}
}

func TestPCAllocDisjoint(t *testing.T) {
	a := NewPCAlloc(0x1000)
	r1 := a.Take(64)
	r2 := a.Take(64)
	if r1 != 0x1000 || r2 != 0x1040 {
		t.Errorf("ranges overlap or misordered: %#x %#x", r1, r2)
	}
}

func TestNewSiteUnique(t *testing.T) {
	s1 := NewSite()
	s2 := NewSite()
	if s1.PC() == s2.PC() {
		t.Errorf("sites collide at %#x", s1.PC())
	}
	if s1.PC() < RegionVMText {
		t.Errorf("site below VM text region: %#x", s1.PC())
	}
}

func TestRegionsDisjoint(t *testing.T) {
	// The heap, stack, JIT code and VM text regions must be far apart so
	// that the cache model never aliases them accidentally.
	regions := []uint64{RegionVMText, RegionStatic, RegionHeap, RegionJITCode, RegionStack}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			d := regions[i] - regions[j]
			if regions[j] > regions[i] {
				d = regions[j] - regions[i]
			}
			if d < 1<<22 {
				t.Errorf("regions %#x and %#x too close", regions[i], regions[j])
			}
		}
	}
}
