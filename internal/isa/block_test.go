package isa

import "testing"

func TestNewBlockDropsZeroCounts(t *testing.T) {
	b := NewBlock(CC(ALU, 3), CC(Load, 0), CC(Store, 2))
	if len(b.Mix) != 2 {
		t.Fatalf("Mix has %d entries, want 2 (zero counts dropped)", len(b.Mix))
	}
	if b.Total != 5 {
		t.Fatalf("Total = %d, want 5", b.Total)
	}
}

func TestNewBlockAllowsJump(t *testing.T) {
	b := NewBlock(CC(ALU, 1), CC(Jump, 2))
	if b.Total != 3 {
		t.Fatalf("Total = %d, want 3", b.Total)
	}
}

func TestNewBlockRejectsPredictedClasses(t *testing.T) {
	for _, c := range []Class{Branch, IndirectJump, Call, IndirectCall, Ret} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBlock accepted predicted class %v", c)
				}
			}()
			NewBlock(CC(c, 1))
		}()
	}
}

func TestCountingStreamBlock(t *testing.T) {
	var s CountingStream
	b := NewBlock(CC(ALU, 4), CC(Store, 2))
	s.Block(b)
	s.Block(b)
	if s.Counts[ALU] != 8 || s.Counts[Store] != 4 {
		t.Fatalf("counts = alu:%d store:%d, want 8/4", s.Counts[ALU], s.Counts[Store])
	}
	if s.Total() != 12 {
		t.Fatalf("Total = %d, want 12", s.Total())
	}
}
