// Command mtjitload is the cluster's open-loop load generator: it
// replays heavy request mixes of the benchmark suite (plus recorded
// trace fixtures) against an mtjitd frontend or worker, verifies that
// every cell always answers with byte-identical result payloads, and
// reports latency quantiles and shed/dedup/store rates at saturation.
//
// Open-loop means arrivals are scheduled by the clock, not by
// completions: when the target saturates, requests pile up and shed —
// which is exactly the regime the p99/p999 and shed-rate numbers are
// for. Traffic is dedup-heavy by construction (-hot concentrates a
// fraction of arrivals on a few hot cells), matching the bursty,
// repetitive cell traffic the cluster is built to absorb.
//
// All measurements flow through the live telemetry registry
// (internal/telemetry): the generator registers its own
// mtjitload_* counters and latency histogram, derives the report's
// quantiles from that histogram, and scrapes the target's (and any
// -scrape peers') /metrics for the server-side dedup, shed, and
// content-store counters.
//
// Usage:
//
//	mtjitload -target http://127.0.0.1:8100 -rate 200 -duration 10s
//	mtjitload -target http://127.0.0.1:8100 -traces internal/bench/testdata/traces \
//	          -scrape http://127.0.0.1:8101,http://127.0.0.1:8102 -out report.json
//
// Exit status is non-zero if any response disagreed byte-for-byte with
// the first response seen for the same cell (-verify, on by default).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metajit/internal/bench"
	"metajit/internal/cluster"
	"metajit/internal/harness"
	"metajit/internal/reqtrace"
	"metajit/internal/telemetry"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8100", "frontend (or worker) base URL")
	rate := flag.Float64("rate", 50, "open-loop arrival rate in requests/second")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	vms := flag.String("vms", "cpython,pypy,pypy-tiered", "VM kinds in the mix (comma-separated; pypy-amalg and pypy-adaptive add the tier-2 method strategies)")
	benches := flag.String("benches", "", "benchmarks in the mix (comma-separated; default: the full suite)")
	traceDir := flag.String("traces", "", "recorded-trace fixture directory added to the mix")
	hot := flag.Float64("hot", 0.5, "fraction of arrivals concentrated on the hot cell subset")
	hotCells := flag.Int("hot-cells", 3, "size of the hot cell subset")
	seed := flag.Int64("seed", 1, "mix-sampling seed (reproducible traffic)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	maxInstrs := flag.Uint64("max-instrs", 0, "forwarded to every request (0: run to completion)")
	verify := flag.Bool("verify", true, "fail if a cell ever answers with different result bytes")
	scrape := flag.String("scrape", "", "extra /metrics base URLs to aggregate (comma-separated; target always scraped)")
	out := flag.String("out", "", "write the JSON report here (default: stdout)")
	exemplars := flag.Bool("exemplars", true, "resolve the slowest request per percentile bucket to its span tree via /debug/reqtrace")
	traceOut := flag.String("reqtrace-out", "", "fetch every scraped process's flight recorder, merge into one Chrome trace, validate, and write it here")
	flag.Parse()

	mix, err := buildMix(*benches, *vms, *traceDir)
	if err != nil {
		fatal(err)
	}
	if len(mix) == 0 {
		fatal(fmt.Errorf("empty request mix"))
	}
	g := newGenerator(*target, mix, *hot, *hotCells, *seed, *timeout, *maxInstrs, *verify)
	fmt.Fprintf(os.Stderr, "mtjitload: %d cells in mix (%d hot), %.0f req/s for %s against %s\n",
		len(mix), min(*hotCells, len(mix)), *rate, *duration, *target)

	g.run(*rate, *duration)

	scrapes := []string{*target}
	if *scrape != "" {
		for _, u := range strings.Split(*scrape, ",") {
			if u = strings.TrimSpace(u); u != "" && u != *target {
				scrapes = append(scrapes, u)
			}
		}
	}
	rep := g.report(scrapes, *exemplars)
	if *traceOut != "" {
		if err := g.writeMergedChrome(scrapes, *traceOut); err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	rep.printSummary(os.Stderr)
	if *verify && rep.Wrong > 0 {
		fmt.Fprintf(os.Stderr, "mtjitload: FAIL: %d responses diverged from their cell's first result\n", rep.Wrong)
		os.Exit(1)
	}
}

// buildMix enumerates the (bench, vm) cells of the run. VM kinds that
// need a guest source the program lacks are skipped per-program, so the
// default mix covers every runnable combination: the 21 synthetic
// benchmarks plus every recorded fixture in -traces.
func buildMix(benchCSV, vmCSV, traceDir string) ([]cluster.Request, error) {
	var progs []*bench.Program
	if benchCSV == "" {
		for _, p := range bench.All() {
			p := p
			progs = append(progs, &p)
		}
	} else {
		for _, name := range strings.Split(benchCSV, ",") {
			p := bench.ByName(strings.TrimSpace(name))
			if p == nil {
				return nil, fmt.Errorf("unknown benchmark %q", name)
			}
			progs = append(progs, p)
		}
	}
	if traceDir != "" {
		tps, err := bench.LoadTraceDir(traceDir)
		if err != nil {
			return nil, err
		}
		for i := range tps {
			progs = append(progs, &tps[i])
		}
	}
	var mix []cluster.Request
	for _, vm := range strings.Split(vmCSV, ",") {
		vm = strings.TrimSpace(vm)
		kind := harness.VMKind(vm)
		for _, p := range progs {
			switch kind {
			case harness.VMRacket, harness.VMPycket:
				if p.SkSource == "" {
					continue
				}
			case harness.VMC:
				continue // static kernels are not a cluster workload
			default:
				if p.Source == "" {
					continue
				}
			}
			mix = append(mix, cluster.Request{Bench: p.Name, VM: vm})
		}
	}
	return mix, nil
}

type generator struct {
	target    string
	mix       []cluster.Request
	hot       float64
	hotCells  int
	maxInstrs uint64
	verify    bool
	client    *http.Client

	reg      *telemetry.Registry
	okC      *telemetry.Counter
	shedC    *telemetry.Counter
	errC     *telemetry.Counter
	wrongC   *telemetry.Counter
	srcSim   *telemetry.Counter
	srcMemo  *telemetry.Counter
	srcStore *telemetry.Counter
	lat      *telemetry.Histogram
	inflight atomic.Int64
	ids      *reqtrace.IDSource

	mu      sync.Mutex
	rng     *rand.Rand
	seen    map[string]json.RawMessage // cell id -> first result payload
	samples []sample                   // one per OK response, for exemplars
}

// sample ties one OK response to the trace ID the generator minted for
// it — the key that resolves a latency outlier to its span tree in the
// servers' flight recorders.
type sample struct {
	trace  string
	bench  string
	vm     string
	source string
	latUS  uint64
}

func newGenerator(target string, mix []cluster.Request, hot float64, hotCells int, seed int64, timeout time.Duration, maxInstrs uint64, verify bool) *generator {
	g := &generator{
		target:    strings.TrimSuffix(target, "/"),
		mix:       mix,
		hot:       hot,
		hotCells:  hotCells,
		maxInstrs: maxInstrs,
		verify:    verify,
		client:    &http.Client{Timeout: timeout},
		reg:       telemetry.NewRegistry(),
		ids:       reqtrace.NewIDSource(seed),
		rng:       rand.New(rand.NewSource(seed)),
		seen:      map[string]json.RawMessage{},
	}
	help := "Load-generator requests by outcome (ok, shed, error, wrong)."
	g.okC = g.reg.Counter("mtjitload_requests_total", help, "outcome", "ok")
	g.shedC = g.reg.Counter("mtjitload_requests_total", help, "outcome", "shed")
	g.errC = g.reg.Counter("mtjitload_requests_total", help, "outcome", "error")
	g.wrongC = g.reg.Counter("mtjitload_requests_total", help, "outcome", "wrong")
	shelp := "OK responses by serving source (simulated, memo, store)."
	g.srcSim = g.reg.Counter("mtjitload_responses_total", shelp, "source", "simulated")
	g.srcMemo = g.reg.Counter("mtjitload_responses_total", shelp, "source", "memo")
	g.srcStore = g.reg.Counter("mtjitload_responses_total", shelp, "source", "store")
	g.lat = g.reg.Histogram("mtjitload_latency_micros", "End-to-end OK-request latency in microseconds.")
	g.reg.GaugeFunc("mtjitload_inflight", "Requests currently outstanding.", func() float64 {
		return float64(g.inflight.Load())
	})
	return g
}

// pick samples the next cell: with probability hot, one of the first
// hotCells cells (the dedup/store-heavy head of the distribution);
// otherwise uniform over the whole mix.
func (g *generator) pick() cluster.Request {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.mix)
	h := g.hotCells
	if h > n {
		h = n
	}
	if h > 0 && g.rng.Float64() < g.hot {
		return g.mix[g.rng.Intn(h)]
	}
	return g.mix[g.rng.Intn(n)]
}

// run drives the open loop: one goroutine per arrival, scheduled by the
// clock. After the duration it stops launching and waits for
// outstanding requests (bounded by the client timeout).
func (g *generator) run(rate float64, d time.Duration) {
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for time.Now().Before(deadline) {
		<-tick.C
		req := g.pick()
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.one(req)
		}()
	}
	wg.Wait()
}

func (g *generator) one(req cluster.Request) {
	req.MaxInstrs = g.maxInstrs
	body, _ := json.Marshal(&req)
	// Mint this request's trace before sending: the seeded ID source
	// makes a run's trace IDs reproducible, and knowing the ID up front
	// is what lets the report resolve an outlier to its span tree in the
	// servers' flight recorders afterwards.
	ctx := g.ids.NewContext()
	hreq, err := http.NewRequest(http.MethodPost, g.target+"/run", bytes.NewReader(body))
	if err != nil {
		g.errC.Inc()
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	reqtrace.Inject(hreq.Header, ctx)
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	start := time.Now()
	resp, err := g.client.Do(hreq)
	if err != nil {
		g.errC.Inc()
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		g.errC.Inc()
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		lat := uint64(time.Since(start).Microseconds())
		g.lat.Observe(lat)
		g.check(b, req, ctx, lat)
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shedC.Inc()
	default:
		g.errC.Inc()
	}
}

// check verifies the correctness invariant the chaos layer proves in
// miniature: one cell, one answer. The first result payload seen for a
// cell pins it; any later response for the same cell must carry
// byte-identical result JSON, no matter which worker served it or
// whether it came from the memoizer, the store, or a fresh simulation.
func (g *generator) check(body []byte, req cluster.Request, ctx reqtrace.Context, latUS uint64) {
	var rr struct {
		CellID string          `json:"cell_id"`
		Source string          `json:"source"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &rr); err != nil || rr.CellID == "" {
		g.errC.Inc()
		return
	}
	g.okC.Inc()
	switch rr.Source {
	case "simulated":
		g.srcSim.Inc()
	case "memo":
		g.srcMemo.Inc()
	case "store":
		g.srcStore.Inc()
	}
	g.mu.Lock()
	g.samples = append(g.samples, sample{
		trace:  ctx.Trace.Hex(),
		bench:  req.Bench,
		vm:     req.VM,
		source: rr.Source,
		latUS:  latUS,
	})
	g.mu.Unlock()
	if !g.verify {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if first, ok := g.seen[rr.CellID]; ok {
		if !bytes.Equal(first, rr.Result) {
			g.wrongC.Inc()
		}
		return
	}
	g.seen[rr.CellID] = append(json.RawMessage(nil), rr.Result...)
}

// Report is the run's outcome, serialized as JSON. Latency quantiles
// are derived from the generator's telemetry histogram (log2 buckets,
// linear interpolation within a bucket); server-side rates come from
// the scraped registries.
type Report struct {
	Target        string  `json:"target"`
	Requests      uint64  `json:"requests"`
	OK            uint64  `json:"ok"`
	Shed          uint64  `json:"shed"`
	Errors        uint64  `json:"errors"`
	Wrong         uint64  `json:"wrong"`
	DistinctCells int     `json:"distinct_cells"`
	ShedRate      float64 `json:"shed_rate"`

	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`

	SourceSimulated uint64 `json:"source_simulated"`
	SourceMemo      uint64 `json:"source_memo"`
	SourceStore     uint64 `json:"source_store"`

	// Server-side counters aggregated over every scraped registry.
	FrontendDedup    float64 `json:"frontend_dedup"`
	FrontendFailover float64 `json:"frontend_failovers"`
	FrontendShed     float64 `json:"frontend_shed"`
	StoreHits        float64 `json:"store_hits"`
	StoreMisses      float64 `json:"store_misses"`
	StoreCorrupt     float64 `json:"store_corrupt"`
	DedupRate        float64 `json:"dedup_rate"`
	StoreHitRate     float64 `json:"store_hit_rate"`

	// Exemplars explain the latency quantiles in place: for each
	// percentile bucket, the slowest OK request in it, resolved to its
	// span breakdown via the servers' /debug/reqtrace flight recorders.
	Exemplars []Exemplar `json:"exemplars,omitempty"`

	Scraped []string `json:"scraped"`
}

// Exemplar is the slowest request of one percentile bucket, explained:
// the trace ID names the request in every process's flight recorder,
// and Spans is its end-to-end breakdown — route, failover attempts,
// singleflight role, store read/write, simulate — merged across the
// scraped processes.
type Exemplar struct {
	Bucket    string      `json:"bucket"` // "p50", "p99", "p999"
	Trace     string      `json:"trace"`
	Bench     string      `json:"bench"`
	VM        string      `json:"vm"`
	Source    string      `json:"source"`
	LatencyMS float64     `json:"latency_ms"`
	Spans     []SpanBrief `json:"spans,omitempty"`
}

// SpanBrief is one span of an exemplar's tree, flattened for the
// report; VMSpans counts the simulator phase spans a simulate span
// captured (the full detail stays in /debug/reqtrace?format=chrome).
type SpanBrief struct {
	Process string  `json:"process"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name,omitempty"`
	DurMS   float64 `json:"dur_ms"`
	Err     string  `json:"err,omitempty"`
	VMSpans int     `json:"vm_spans,omitempty"`
}

func (g *generator) report(scrapes []string, exemplars bool) *Report {
	snap := g.lat.Snapshot()
	r := &Report{
		Target:          g.target,
		OK:              g.okC.Value(),
		Shed:            g.shedC.Value(),
		Errors:          g.errC.Value(),
		Wrong:           g.wrongC.Value(),
		SourceSimulated: g.srcSim.Value(),
		SourceMemo:      g.srcMemo.Value(),
		SourceStore:     g.srcStore.Value(),
		P50MS:           quantileMS(snap, 0.50),
		P99MS:           quantileMS(snap, 0.99),
		P999MS:          quantileMS(snap, 0.999),
	}
	g.mu.Lock()
	r.DistinctCells = len(g.seen)
	g.mu.Unlock()
	r.Requests = r.OK + r.Shed + r.Errors + r.Wrong
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	if snap.Count > 0 {
		r.MeanMS = float64(snap.Sum) / float64(snap.Count) / 1000
	}
	for _, u := range scrapes {
		fams, err := g.scrapeOne(u)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtjitload: scrape %s: %v\n", u, err)
			continue
		}
		r.Scraped = append(r.Scraped, u)
		r.FrontendDedup += sumFamily(fams, "cluster_frontend_dedup_total", "", "")
		r.FrontendFailover += sumFamily(fams, "cluster_frontend_failovers_total", "", "")
		r.FrontendShed += sumFamily(fams, "cluster_frontend_requests_total", "outcome", "shed")
		r.StoreHits += sumFamily(fams, "cluster_store_hits_total", "", "")
		r.StoreMisses += sumFamily(fams, "cluster_store_misses_total", "", "")
		r.StoreCorrupt += sumFamily(fams, "cluster_store_corrupt_total", "", "")
	}
	sort.Strings(r.Scraped)
	if exemplars {
		r.Exemplars = g.resolveExemplars(scrapes)
	}
	if r.OK > 0 {
		r.DedupRate = r.FrontendDedup / float64(r.OK)
	}
	if t := r.StoreHits + r.StoreMisses; t > 0 {
		r.StoreHitRate = r.StoreHits / t
	} else if r.OK > 0 {
		// Store counters live on the workers; when only the frontend was
		// scraped, fall back to the client-observed serving sources.
		r.StoreHitRate = float64(r.SourceStore) / float64(r.OK)
	}
	return r
}

// resolveExemplars picks the slowest OK request at each percentile
// bucket and resolves its trace ID to a span breakdown by querying
// every scraped process's /debug/reqtrace. Fetch failures degrade to an
// exemplar without spans — the trace ID is still reported, so the
// outlier stays attributable by hand.
func (g *generator) resolveExemplars(scrapes []string) []Exemplar {
	g.mu.Lock()
	samples := append([]sample(nil), g.samples...)
	g.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].latUS < samples[j].latUS })
	var out []Exemplar
	picked := map[string]bool{}
	for _, b := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
		idx := int(math.Ceil(b.q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		s := samples[idx]
		ex := Exemplar{
			Bucket:    b.name,
			Trace:     s.trace,
			Bench:     s.bench,
			VM:        s.vm,
			Source:    s.source,
			LatencyMS: float64(s.latUS) / 1000,
		}
		if !picked[s.trace] { // tiny runs repeat a sample across buckets
			picked[s.trace] = true
			for _, t := range g.fetchTrees(scrapes, s.trace) {
				for _, sp := range t.Spans {
					ex.Spans = append(ex.Spans, SpanBrief{
						Process: t.Process,
						Kind:    sp.Kind,
						Name:    sp.Name,
						DurMS:   sp.DurUS / 1000,
						Err:     sp.Err,
						VMSpans: len(sp.VM),
					})
				}
			}
		}
		out = append(out, ex)
	}
	return out
}

// fetchTrees collects one trace's span trees from every scraped
// process's flight recorder (trace == "" fetches everything).
func (g *generator) fetchTrees(bases []string, trace string) []reqtrace.TreeSnapshot {
	var out []reqtrace.TreeSnapshot
	for _, base := range bases {
		url := strings.TrimSuffix(base, "/") + "/debug/reqtrace"
		if trace != "" {
			url += "?trace=" + trace
		}
		resp, err := g.client.Get(url)
		if err != nil {
			continue
		}
		var dump reqtrace.Dump
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&dump)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		out = append(out, dump.Trees...)
	}
	return out
}

// writeMergedChrome pulls every scraped process's full flight ring,
// merges it into a single Chrome trace, validates the export (paired
// B/E events, monotone tracks), and writes it to path — the artifact CI
// archives from the cluster-smoke burst.
func (g *generator) writeMergedChrome(scrapes []string, path string) error {
	trees := g.fetchTrees(scrapes, "")
	if len(trees) == 0 {
		return fmt.Errorf("reqtrace export: no span trees fetched from %v", scrapes)
	}
	var buf bytes.Buffer
	if err := reqtrace.WriteChrome(&buf, trees); err != nil {
		return fmt.Errorf("reqtrace export: %w", err)
	}
	events, err := reqtrace.ValidateChrome(buf.Bytes())
	if err != nil {
		return fmt.Errorf("reqtrace export: merged trace invalid: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("reqtrace export: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mtjitload: wrote %s: %d trees, %d chrome events from %d processes\n",
		path, len(trees), events, len(scrapes))
	return nil
}

func (g *generator) scrapeOne(base string) (map[string]*telemetry.ParsedFamily, error) {
	resp, err := g.client.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return telemetry.ParseText(resp.Body)
}

// sumFamily sums a family's samples, optionally filtered by one label
// pair. ParseText renders each sample's labels into its name, so match
// on substring of the rendered form.
func sumFamily(fams map[string]*telemetry.ParsedFamily, name, labelKey, labelVal string) float64 {
	f, ok := fams[name]
	if !ok {
		return 0
	}
	var t float64
	for _, s := range f.Samples {
		if labelKey != "" && !strings.Contains(s.Labels, labelKey+`="`+labelVal+`"`) {
			continue
		}
		t += s.Value
	}
	return t
}

// quantileMS estimates a quantile in milliseconds from a log2-bucketed
// latency histogram: find the bucket the quantile lands in, then
// interpolate linearly between its bounds. Resolution is the bucket
// width (a factor of 2), which is plenty for the saturation shapes the
// report is after.
func quantileMS(s telemetry.HistogramSnapshot, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prev uint64
	for i := 0; i < telemetry.HistogramBuckets; i++ {
		cum := s.Buckets[i]
		if float64(cum) >= rank {
			lo, hi := 0.0, math.Exp2(float64(i))
			if i > 0 {
				lo = math.Exp2(float64(i - 1))
			}
			within := 0.5
			if cum > prev {
				within = (rank - float64(prev)) / float64(cum-prev)
			}
			return (lo + within*(hi-lo)) / 1000
		}
		prev = cum
	}
	// Overflow bucket: report its lower bound.
	return math.Exp2(telemetry.HistogramBuckets-1) / 1000
}

func (r *Report) printSummary(w io.Writer) {
	fmt.Fprintf(w, "mtjitload: %d requests → %d ok, %d shed (%.1f%%), %d errors, %d wrong; %d distinct cells\n",
		r.Requests, r.OK, r.Shed, 100*r.ShedRate, r.Errors, r.Wrong, r.DistinctCells)
	fmt.Fprintf(w, "mtjitload: latency p50 %.2fms  p99 %.2fms  p999 %.2fms  mean %.2fms\n",
		r.P50MS, r.P99MS, r.P999MS, r.MeanMS)
	fmt.Fprintf(w, "mtjitload: served simulated=%d memo=%d store=%d; dedup rate %.1f%%, store hit rate %.1f%%, failovers %.0f\n",
		r.SourceSimulated, r.SourceMemo, r.SourceStore, 100*r.DedupRate, 100*r.StoreHitRate, r.FrontendFailover)
	for _, ex := range r.Exemplars {
		fmt.Fprintf(w, "mtjitload: %s exemplar %.2fms %s/%s (%s) trace=%s: %d spans resolved\n",
			ex.Bucket, ex.LatencyMS, ex.Bench, ex.VM, ex.Source, ex.Trace, len(ex.Spans))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mtjitload: %v\n", err)
	os.Exit(1)
}
