// Command hostbench measures the host-side performance of the simulator
// (see internal/hostbench) and maintains the committed perf baseline.
//
// Usage:
//
//	hostbench -out BENCH_host.json                      # record a baseline
//	hostbench -baseline BENCH_host.json                 # compare a fresh run
//	hostbench -baseline BENCH_host.json -out fresh.json # compare and keep the run
//
// With -baseline, the process exits non-zero if any entry regresses
// beyond the thresholds. `make perf-baseline` and `make perf-compare`
// wrap the two modes.
package main

import (
	"flag"
	"fmt"
	"os"

	"metajit/internal/hostbench"
)

func main() {
	out := flag.String("out", "", "write the fresh measurement set to this file")
	baseline := flag.String("baseline", "", "compare the fresh run against this committed baseline")
	timeThreshold := flag.Float64("time-threshold", hostbench.DefaultThresholds().Time,
		"allowed fractional regression on wall-time metrics (0.35 = +35%)")
	allocThreshold := flag.Float64("alloc-threshold", hostbench.DefaultThresholds().Alloc,
		"allowed fractional regression on allocation metrics")
	quick := flag.Bool("quick", false, "halve the repetition budget")
	skipSuite := flag.Bool("skip-suite", false, "skip the full -exp all entry (fast iteration)")
	flag.Parse()

	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "hostbench: need -out and/or -baseline")
		os.Exit(2)
	}

	fresh, err := hostbench.Measure(hostbench.Config{
		Quick:     *quick,
		SkipSuite: *skipSuite,
		Log:       os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostbench:", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		if err := hostbench.Encode(f, fresh); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hostbench: wrote %s\n", *out)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		old, err := hostbench.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		regs, err := hostbench.Compare(old, fresh, hostbench.Thresholds{
			Time:  *timeThreshold,
			Alloc: *allocThreshold,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hostbench:", err)
			os.Exit(1)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "hostbench: %d regression(s) vs %s:\n", len(regs), *baseline)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  ", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hostbench: no regressions vs %s\n", *baseline)
	}
}
