package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

const fixture = "../../internal/bench/testdata/traces/telco_small-pypy-tiered.mtt"

// TestDumpGolden pins tracefmt's dump output for a committed fixture
// byte-for-byte. The simulator and the trace encoding are both
// deterministic, so any drift — format change, schema change,
// accounting change — surfaces as a diff here. Regenerate with:
//
//	go test ./cmd/tracefmt -update
//
// (after re-recording fixtures with `go test ./internal/bench -run
// TestTraceFixtures -update` if the accounting itself moved).
func TestDumpGolden(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"dump", "-events", "12", fixture}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	golden := filepath.Join("testdata", "dump_telco_small.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("dump output drifted from golden file:\n--- golden\n%s\n--- got\n%s", want, out.Bytes())
	}
}

// TestDumpErrors pins the CLI's failure modes: bad subcommand, missing
// file, and non-trace input all exit non-zero with a diagnostic.
func TestDumpErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errw); code == 0 {
		t.Error("unknown subcommand exited 0")
	}
	errw.Reset()
	if code := run([]string{"dump", "no-such-file.mtt"}, &out, &errw); code == 0 {
		t.Error("missing file exited 0")
	}
	bad := filepath.Join(t.TempDir(), "bad.mtt")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if code := run([]string{"dump", bad}, &out, &errw); code == 0 {
		t.Error("non-trace input exited 0")
	}
	if !strings.Contains(errw.String(), "magic") {
		t.Errorf("diagnostic does not name the decode failure: %q", errw.String())
	}
}
