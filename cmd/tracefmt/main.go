// Command tracefmt inspects recorded workload traces (internal/trace,
// the .mtt files under internal/bench/testdata/traces and any directory
// written by -record). The dump subcommand renders a trace
// human-readably: header, recording configuration, event schema,
// sealed summary, per-phase counters, and the event stream with tag
// and kind names resolved.
//
// Usage:
//
//	tracefmt dump [-events N] [-all] file.mtt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"metajit/internal/core"
	"metajit/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(errw, "usage: tracefmt dump [-events N] [-all] <file.mtt>")
		return 2
	}
	switch args[0] {
	case "dump":
		return runDump(args[1:], out, errw)
	default:
		fmt.Fprintf(errw, "tracefmt: unknown subcommand %q (want dump)\n", args[0])
		return 2
	}
}

func runDump(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("tracefmt dump", flag.ContinueOnError)
	fs.SetOutput(errw)
	nEvents := fs.Int("events", 20, "cap on dumped events (0 disables the event dump)")
	all := fs.Bool("all", false, "dump every event, ignoring -events")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: tracefmt dump [-events N] [-all] <file.mtt>")
		return 2
	}
	path := fs.Arg(0)
	t, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errw, "tracefmt: %v\n", err)
		return 1
	}
	cap := *nEvents
	if *all {
		cap = int(t.Summary.Events)
	}
	if err := dump(out, t, cap); err != nil {
		fmt.Fprintf(errw, "tracefmt: %s: %v\n", path, err)
		return 1
	}
	return 0
}

func dump(w io.Writer, t *trace.Trace, nEvents int) error {
	h := &t.Header
	fmt.Fprintf(w, "trace: %s (guest %s) recorded on %s\n", h.Name, h.Guest, h.VM)
	fmt.Fprintf(w, "format: v%d, %d event bytes, hash %s\n", h.Version, len(t.EventData), t.Hash()[:16])
	if h.Seed != 0 {
		fmt.Fprintf(w, "seed: %d\n", h.Seed)
	}
	fmt.Fprintf(w, "source: %d bytes\n", len(h.Source))
	c := h.Config
	fmt.Fprintf(w, "config: threshold=%d bridge=%d baseline=%d nursery=%d major=%d growth=%g\n",
		c.Threshold, c.BridgeThreshold, c.BaselineThreshold,
		c.NurserySize, c.MajorThreshold, c.MajorGrowth())
	fmt.Fprintf(w, "schema:")
	for _, d := range h.Schema {
		fmt.Fprintf(w, " %s/%d", d.Name, d.NArgs)
	}
	fmt.Fprintln(w)
	s := &t.Summary
	fmt.Fprintf(w, "summary:\n")
	fmt.Fprintf(w, "  checksum       %d\n", s.Checksum)
	fmt.Fprintf(w, "  heap checksum  %#x\n", s.HeapChecksum)
	fmt.Fprintf(w, "  instrs         %d\n", s.Instrs)
	fmt.Fprintf(w, "  cycles         %.1f\n", s.Cycles())
	fmt.Fprintf(w, "  events         %d\n", s.Events)
	fmt.Fprintf(w, "  gc             minor=%d major=%d objects=%d bytes=%d promoted=%d skipped=%d\n",
		s.GC.Minor, s.GC.Major, s.GC.AllocObjects, s.GC.AllocBytes, s.GC.PromotedBytes, s.GC.Skipped)
	fmt.Fprintf(w, "phases:\n")
	for i, p := range s.Phases {
		if p.Instrs == 0 {
			continue
		}
		name := fmt.Sprintf("phase%d", i)
		if i < int(core.NumPhases) {
			name = core.Phase(i).String()
		}
		fmt.Fprintf(w, "  %-14s instrs=%d\n", name, p.Instrs)
	}
	if nEvents == 0 {
		return nil
	}
	fmt.Fprintf(w, "events (%d of %d):\n", min(nEvents, int(s.Events)), s.Events)
	i := 0
	err := t.WalkEvents(func(e trace.Event) error {
		if i >= nEvents {
			return errStop
		}
		fmt.Fprintf(w, "  [%d] %s\n", i, formatEvent(t, e))
		i++
		return nil
	})
	if err == errStop {
		err = nil
	}
	return err
}

var errStop = fmt.Errorf("stop")

var allocKinds = [...]string{"obj", "bytes", "elems"}

func formatEvent(t *trace.Trace, e trace.Event) string {
	switch e.Kind {
	case trace.EvShape:
		return fmt.Sprintf("shape id=%d fields=%d", e.Args[0], e.Args[1])
	case trace.EvAlloc:
		kind := fmt.Sprintf("%d", e.Args[1])
		if e.Args[1] < uint64(len(allocKinds)) {
			kind = allocKinds[e.Args[1]]
		}
		return fmt.Sprintf("alloc shape=%d kind=%s fields=%d payload=%d size=%d",
			e.Args[0], kind, e.Args[2], e.Args[3], e.Args[4])
	case trace.EvFree:
		return fmt.Sprintf("free age=%d", e.Args[0])
	case trace.EvAnnot:
		return fmt.Sprintf("annot %s arg=%d +instrs=%d",
			core.TagName(core.Tag(e.Args[0])), e.Args[1], e.Args[2])
	case trace.EvDispatch:
		return fmt.Sprintf("dispatch ticks=%d bytecodes=%d +instrs=%d",
			e.Args[0], e.Args[1], e.Args[2])
	default:
		return fmt.Sprintf("%s args=%v", t.SchemaName(e.Kind), e.Args)
	}
}
