// Command mtjit runs one benchmark (or a guest source file) on one VM
// configuration and reports cross-layer measurements: time, IPC, MPKI,
// phase breakdown, GC and JIT statistics.
//
// Usage:
//
//	mtjit -bench richards -vm pypy
//	mtjit -vm cpython -file prog.py
//	mtjit -bench binarytrees -vm pypy -jitlog
//	mtjit -bench telco -vm pypy-tiered -record traces/
//	mtjit -replay traces/telco-pypy-tiered.mtt
//	mtjit -replay traces/telco-pypy-tiered.mtt -replay-alloc
//
// -record writes the run's recorded workload trace (internal/trace)
// into the given directory. -replay loads a trace file and re-drives
// it: by default as a guest re-execution under the configuration
// sealed in the trace header, verified against the recorded summary
// (non-zero exit on divergence); with -replay-alloc, as a pure
// allocation replay driving only the GC (the dj_trace mode).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"metajit/internal/bench"
	"metajit/internal/core"
	"metajit/internal/cpu"
	"metajit/internal/harness"
	"metajit/internal/jitlog"
	"metajit/internal/mtjit"
	"metajit/internal/pintool"
	"metajit/internal/pylang"
	"metajit/internal/telemetry"
	"metajit/internal/trace"
)

func main() {
	benchName := flag.String("bench", "", "benchmark name (see -list)")
	file := flag.String("file", "", "run a guest source file instead of a benchmark")
	vmName := flag.String("vm", "pypy", "vm: cpython | pypy-nojit | pypy | pypy-tiered | pypy-amalg | pypy-adaptive | racket | pycket | c")
	list := flag.Bool("list", false, "list benchmarks")
	dumpLog := flag.Bool("jitlog", false, "dump the JIT log (traces and IR)")
	threshold := flag.Int("threshold", 0, "JIT hot-loop threshold override")
	profileDir := flag.String("profile", "", "write streaming-profiler artifacts (Chrome trace, folded flamegraph, interval series) to this directory")
	teleDump := flag.Bool("telemetry-dump", false, "print a final telemetry snapshot (Prometheus text format) to stderr")
	recordDir := flag.String("record", "", "record the run as a workload trace (.mtt) into this directory")
	replayFile := flag.String("replay", "", "replay a recorded workload trace file and verify it against its recorded summary")
	replayAlloc := flag.Bool("replay-alloc", false, "with -replay: drive only the heap/GC from the recorded allocation stream (dj_trace mode)")
	flag.Parse()

	// Telemetry attaches before any guest work and dumps to stderr at
	// exit, keeping stdout byte-identical to an uninstrumented run.
	var reg *telemetry.Registry
	if *teleDump {
		reg = telemetry.NewRegistry()
		harness.InstallTelemetry(reg)
	}

	if *list {
		for _, p := range bench.All() {
			sk := " "
			if p.SkSource != "" {
				sk = "s"
			}
			c := " "
			if p.Static {
				c = "c"
			}
			fmt.Printf("%-20s [%s] %s%s\n", p.Name, p.Suite, sk, c)
		}
		return
	}

	if *replayFile != "" {
		vmExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "vm" {
				vmExplicit = true
			}
		})
		code := runReplay(*replayFile, *vmName, vmExplicit, *replayAlloc, *profileDir, *recordDir, *dumpLog)
		dumpTelemetry(reg)
		os.Exit(code)
	}

	if *file != "" {
		runFile(*file, *vmName)
		dumpTelemetry(reg)
		return
	}
	p := bench.ByName(*benchName)
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *benchName)
		os.Exit(2)
	}
	r, err := harness.Run(p, harness.VMKind(*vmName), harness.Options{
		Threshold:  *threshold,
		ProfileDir: *profileDir,
		RecordDir:  *recordDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(r, *dumpLog)
	dumpTelemetry(reg)
}

// runReplay loads a recorded workload trace and re-drives it. Guest
// re-drive runs under the configuration sealed in the trace header
// (unless -vm explicitly overrides the VM, which disables
// verification: a different tier structure legitimately changes the
// counters) and is verified bit-exactly against the recorded summary
// and event stream. Alloc replay applies the recorded allocation/free
// stream straight to a fresh heap.
func runReplay(path, vmName string, vmExplicit, allocOnly bool, profileDir, recordDir string, dumpLog bool) int {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	p := bench.FromTrace(tr)
	kind := harness.VMKind(tr.Header.VM)
	if vmExplicit {
		kind = harness.VMKind(vmName)
	}
	opt := harness.ReplayOptions(tr)
	opt.ProfileDir = profileDir
	opt.RecordDir = recordDir
	fmt.Printf("replaying %s: %s (guest %s) recorded on %s, %d events\n",
		path, tr.Header.Name, tr.Header.Guest, tr.Header.VM, tr.Summary.Events)

	if allocOnly {
		opt.ReplayAlloc = true
		r, err := harness.Run(&p, kind, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("alloc replay: %d allocations applied\n", r.Checksum)
		fmt.Printf("gc: %d minor, %d major, %d objects allocated (%d bytes)\n",
			r.GC.Minor, r.GC.Major, r.GC.AllocObjects, r.GC.AllocBytes)
		fmt.Printf("gc work: %d instrs, %.0f cycles\n", r.Instrs, r.Cycles)
		return 0
	}

	opt.Record = true // re-record so the event streams can be compared
	r, err := harness.Run(&p, kind, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	report(r, dumpLog)
	if vmExplicit && kind != harness.VMKind(tr.Header.VM) {
		fmt.Printf("replay: ran on %s, recorded on %s — verification skipped\n", kind, tr.Header.VM)
		return 0
	}
	got, want := &r.Trace.Summary, &tr.Summary
	switch {
	case got.Checksum != want.Checksum:
		fmt.Fprintf(os.Stderr, "replay DIVERGED: checksum %d, recorded %d\n", got.Checksum, want.Checksum)
	case got.HeapChecksum != want.HeapChecksum:
		fmt.Fprintf(os.Stderr, "replay DIVERGED: heap checksum %#x, recorded %#x\n", got.HeapChecksum, want.HeapChecksum)
	case got.Instrs != want.Instrs || got.CyclesBits != want.CyclesBits:
		fmt.Fprintf(os.Stderr, "replay DIVERGED: %d instrs / %.1f cycles, recorded %d / %.1f\n",
			got.Instrs, got.Cycles(), want.Instrs, want.Cycles())
	case !bytes.Equal(r.Trace.EventData, tr.EventData):
		fmt.Fprintf(os.Stderr, "replay DIVERGED: event stream differs (%d vs %d bytes)\n",
			len(r.Trace.EventData), len(tr.EventData))
	default:
		fmt.Printf("replay verified: summary and event stream reproduce the recording bit-exactly\n")
		return 0
	}
	return 1
}

// dumpTelemetry writes the registry's final exposition snapshot to
// stderr; nil (flag off) is a no-op.
func dumpTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "---- telemetry ----")
	if err := reg.WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func report(r *harness.Result, dumpLog bool) {
	fmt.Printf("benchmark: %s on %s\n", r.Bench, r.VM)
	fmt.Printf("checksum:  %d\n", r.Checksum)
	fmt.Printf("instrs:    %d\n", r.Instrs)
	fmt.Printf("cycles:    %.0f  (%.3f simulated ms @%.1fGHz)\n", r.Cycles, r.Seconds()*1000, r.ClockHz()/1e9)
	fmt.Printf("IPC:       %.2f   branch MPKI: %.2f\n", r.Total.IPC(), r.Total.MPKI())
	fmt.Printf("bytecodes: %d\n", r.Bytecodes)
	fmt.Println("phases (instructions):")
	for _, ph := range core.AllPhases() {
		c := r.Phases[ph]
		if c.Instrs == 0 {
			continue
		}
		fmt.Printf("  %-10s %12d (%5.1f%%)  IPC %.2f\n",
			ph, c.Instrs, 100*r.PhaseFraction(ph), c.IPC())
	}
	fmt.Printf("gc: %d minor, %d major, %d objects allocated (%d bytes)\n",
		r.GC.Minor, r.GC.Major, r.GC.AllocObjects, r.GC.AllocBytes)
	if r.EngStats.BaselinesCompiled > 0 {
		fmt.Printf("tier1: %d baselines compiled (%d invalidated), %d enters, %d deopts\n",
			r.EngStats.BaselinesCompiled, r.EngStats.BaselineInvalidated,
			r.EngStats.BaselineEnters, r.EngStats.BaselineDeopts)
	}
	if r.EngStats.LoopsCompiled > 0 || r.EngStats.BridgesCompiled > 0 {
		fmt.Printf("jit: %d loops, %d bridges, %d aborts, %d ops recorded (%d removed by optimizer)\n",
			r.EngStats.LoopsCompiled, r.EngStats.BridgesCompiled, r.EngStats.Aborts,
			r.EngStats.OpsRecorded, r.EngStats.OpsRemoved)
		fmt.Printf("jit events: %d guard failures, %d deopts, %d bridge entries\n",
			r.Events.GuardFails, r.Events.Deopts, r.Events.BridgeEnters)
	}
	if r.Profile != nil {
		if err := r.Profile.Err(); err != nil {
			fmt.Printf("profile: stream error: %v\n", err)
		} else {
			fmt.Printf("profile: %d spans, %d events over %d windows\n",
				r.Profile.Stream.Spans, r.Profile.Stream.Events, len(r.Profile.Stream.Windows()))
		}
		for _, f := range r.ProfileFiles {
			fmt.Printf("profile: wrote %s\n", f)
		}
	}
	if dumpLog && r.Log != nil {
		fmt.Println("---- jit log ----")
		fmt.Print(r.Log.Dump())
	}
}

func runFile(path, vmName string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mach := cpu.NewDefault()
	pintool.NewPhaseTracker(mach)
	cfg := pylang.Config{}
	switch vmName {
	case "cpython":
		cfg.Profile = mtjit.ReferenceProfile()
	case "pypy-nojit":
		cfg.Profile = mtjit.FrameworkProfile()
	case "pypy":
		cfg.Profile = mtjit.FrameworkProfile()
		cfg.JIT = true
	case "pypy-tiered":
		cfg.Profile = mtjit.FrameworkProfile()
		cfg.JIT = true
		cfg.Baseline = true
	case "pypy-amalg", "pypy-adaptive":
		cfg.Profile = mtjit.FrameworkProfile()
		cfg.JIT = true
		cfg.Baseline = true
		cfg.Method = true
		cfg.Adaptive = vmName == "pypy-adaptive"
	default:
		fmt.Fprintf(os.Stderr, "-file supports cpython|pypy-nojit|pypy|pypy-tiered|pypy-amalg|pypy-adaptive\n")
		os.Exit(2)
	}
	vm := pylang.New(mach, cfg)
	var log *jitlog.Log
	if vm.Eng != nil {
		log = jitlog.Attach(vm.Eng)
	}
	if err := vm.LoadModule(path, string(src)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := vm.RunFunction("main")
	fmt.Print(vm.Output.String())
	fmt.Printf("main() = %s\n", vm.Format(res))
	fmt.Printf("instrs: %d  cycles: %.0f  IPC: %.2f\n",
		mach.TotalInstrs(), mach.TotalCycles(), mach.Total().IPC())
	if log != nil {
		fmt.Printf("jit: %d traces compiled\n", len(log.Traces))
	}
}
