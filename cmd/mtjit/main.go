// Command mtjit runs one benchmark (or a guest source file) on one VM
// configuration and reports cross-layer measurements: time, IPC, MPKI,
// phase breakdown, GC and JIT statistics.
//
// Usage:
//
//	mtjit -bench richards -vm pypy
//	mtjit -vm cpython -file prog.py
//	mtjit -bench binarytrees -vm pypy -jitlog
package main

import (
	"flag"
	"fmt"
	"os"

	"metajit/internal/bench"
	"metajit/internal/core"
	"metajit/internal/cpu"
	"metajit/internal/harness"
	"metajit/internal/jitlog"
	"metajit/internal/mtjit"
	"metajit/internal/pintool"
	"metajit/internal/pylang"
	"metajit/internal/telemetry"
)

func main() {
	benchName := flag.String("bench", "", "benchmark name (see -list)")
	file := flag.String("file", "", "run a guest source file instead of a benchmark")
	vmName := flag.String("vm", "pypy", "vm: cpython | pypy-nojit | pypy | pypy-tiered | racket | pycket | c")
	list := flag.Bool("list", false, "list benchmarks")
	dumpLog := flag.Bool("jitlog", false, "dump the JIT log (traces and IR)")
	threshold := flag.Int("threshold", 0, "JIT hot-loop threshold override")
	profileDir := flag.String("profile", "", "write streaming-profiler artifacts (Chrome trace, folded flamegraph, interval series) to this directory")
	teleDump := flag.Bool("telemetry-dump", false, "print a final telemetry snapshot (Prometheus text format) to stderr")
	flag.Parse()

	// Telemetry attaches before any guest work and dumps to stderr at
	// exit, keeping stdout byte-identical to an uninstrumented run.
	var reg *telemetry.Registry
	if *teleDump {
		reg = telemetry.NewRegistry()
		harness.InstallTelemetry(reg)
	}

	if *list {
		for _, p := range bench.All() {
			sk := " "
			if p.SkSource != "" {
				sk = "s"
			}
			c := " "
			if p.Static {
				c = "c"
			}
			fmt.Printf("%-20s [%s] %s%s\n", p.Name, p.Suite, sk, c)
		}
		return
	}

	if *file != "" {
		runFile(*file, *vmName)
		dumpTelemetry(reg)
		return
	}
	p := bench.ByName(*benchName)
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *benchName)
		os.Exit(2)
	}
	r, err := harness.Run(p, harness.VMKind(*vmName), harness.Options{
		Threshold:  *threshold,
		ProfileDir: *profileDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(r, *dumpLog)
	dumpTelemetry(reg)
}

// dumpTelemetry writes the registry's final exposition snapshot to
// stderr; nil (flag off) is a no-op.
func dumpTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "---- telemetry ----")
	if err := reg.WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func report(r *harness.Result, dumpLog bool) {
	fmt.Printf("benchmark: %s on %s\n", r.Bench, r.VM)
	fmt.Printf("checksum:  %d\n", r.Checksum)
	fmt.Printf("instrs:    %d\n", r.Instrs)
	fmt.Printf("cycles:    %.0f  (%.3f simulated ms @%.1fGHz)\n", r.Cycles, r.Seconds()*1000, r.ClockHz()/1e9)
	fmt.Printf("IPC:       %.2f   branch MPKI: %.2f\n", r.Total.IPC(), r.Total.MPKI())
	fmt.Printf("bytecodes: %d\n", r.Bytecodes)
	fmt.Println("phases (instructions):")
	for _, ph := range core.AllPhases() {
		c := r.Phases[ph]
		if c.Instrs == 0 {
			continue
		}
		fmt.Printf("  %-10s %12d (%5.1f%%)  IPC %.2f\n",
			ph, c.Instrs, 100*r.PhaseFraction(ph), c.IPC())
	}
	fmt.Printf("gc: %d minor, %d major, %d objects allocated (%d bytes)\n",
		r.GC.Minor, r.GC.Major, r.GC.AllocObjects, r.GC.AllocBytes)
	if r.EngStats.BaselinesCompiled > 0 {
		fmt.Printf("tier1: %d baselines compiled (%d invalidated), %d enters, %d deopts\n",
			r.EngStats.BaselinesCompiled, r.EngStats.BaselineInvalidated,
			r.EngStats.BaselineEnters, r.EngStats.BaselineDeopts)
	}
	if r.EngStats.LoopsCompiled > 0 || r.EngStats.BridgesCompiled > 0 {
		fmt.Printf("jit: %d loops, %d bridges, %d aborts, %d ops recorded (%d removed by optimizer)\n",
			r.EngStats.LoopsCompiled, r.EngStats.BridgesCompiled, r.EngStats.Aborts,
			r.EngStats.OpsRecorded, r.EngStats.OpsRemoved)
		fmt.Printf("jit events: %d guard failures, %d deopts, %d bridge entries\n",
			r.Events.GuardFails, r.Events.Deopts, r.Events.BridgeEnters)
	}
	if r.Profile != nil {
		if err := r.Profile.Err(); err != nil {
			fmt.Printf("profile: stream error: %v\n", err)
		} else {
			fmt.Printf("profile: %d spans, %d events over %d windows\n",
				r.Profile.Stream.Spans, r.Profile.Stream.Events, len(r.Profile.Stream.Windows()))
		}
		for _, f := range r.ProfileFiles {
			fmt.Printf("profile: wrote %s\n", f)
		}
	}
	if dumpLog && r.Log != nil {
		fmt.Println("---- jit log ----")
		fmt.Print(r.Log.Dump())
	}
}

func runFile(path, vmName string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mach := cpu.NewDefault()
	pintool.NewPhaseTracker(mach)
	cfg := pylang.Config{}
	switch vmName {
	case "cpython":
		cfg.Profile = mtjit.ReferenceProfile()
	case "pypy-nojit":
		cfg.Profile = mtjit.FrameworkProfile()
	case "pypy":
		cfg.Profile = mtjit.FrameworkProfile()
		cfg.JIT = true
	case "pypy-tiered":
		cfg.Profile = mtjit.FrameworkProfile()
		cfg.JIT = true
		cfg.Baseline = true
	default:
		fmt.Fprintf(os.Stderr, "-file supports cpython|pypy-nojit|pypy|pypy-tiered\n")
		os.Exit(2)
	}
	vm := pylang.New(mach, cfg)
	var log *jitlog.Log
	if vm.Eng != nil {
		log = jitlog.Attach(vm.Eng)
	}
	if err := vm.LoadModule(path, string(src)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := vm.RunFunction("main")
	fmt.Print(vm.Output.String())
	fmt.Printf("main() = %s\n", vm.Format(res))
	fmt.Printf("instrs: %d  cycles: %.0f  IPC: %.2f\n",
		mach.TotalInstrs(), mach.TotalCycles(), mach.Total().IPC())
	if log != nil {
		fmt.Printf("jit: %d traces compiled\n", len(log.Traces))
	}
}
