// Command mtjitd is the long-running introspection daemon: it executes
// benchmark requests over HTTP through the memoizing harness runner and
// exposes live telemetry for the whole simulator stack.
//
// Endpoints:
//
//	POST /run          {"bench":"telco","vm":"pypy-tiered"} — run (memoized)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness + cache statistics
//	GET  /vm/phases    per-phase cycles/instrs/IPC of tracked runs
//	GET  /vm/traces    compiled trace/bridge inventory with jitlog labels
//	GET  /vm/warmup    per-tier work-fraction progress (SSE stream)
//	GET  /debug/pprof  Go runtime profiling
//
// Usage:
//
//	mtjitd -addr :8077
//	curl -s -X POST localhost:8077/run -d '{"bench":"telco","vm":"pypy"}'
//	curl -s localhost:8077/metrics | grep ^mtjit_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metajit/internal/mtjitd"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: NumCPU)")
	maxPending := flag.Int("max-pending", 0, "run requests accepted at once before shedding with 429 (0: 4x workers)")
	liveInterval := flag.Int("live-interval", 0, "live-snapshot publish cadence in machine annotations (0: default)")
	flag.Parse()

	srv := mtjitd.New(mtjitd.Config{
		Workers:      *workers,
		MaxPending:   *maxPending,
		LiveInterval: *liveInterval,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mtjitd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mtjitd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mtjitd: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mtjitd: shutdown: %v\n", err)
		os.Exit(1)
	}
}
