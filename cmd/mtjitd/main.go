// Command mtjitd is the simulation-serving daemon. It runs in three
// modes:
//
//	-mode single    (default) the original single-process introspection
//	                daemon: memoizing runner, /metrics, live /vm views.
//	-mode worker    one shard of a cluster: simulates the cells routed
//	                to it, persists results in the shared
//	                content-addressed store (-store), sheds load with
//	                429 past -max-pending, and drains gracefully on
//	                SIGTERM (finish in-flight, 503 new requests so the
//	                frontend fails over, then exit).
//	-mode frontend  the routing tier: consistent-hashes cells across
//	                -peers workers, dedups identical in-flight cells,
//	                retries/fails over along the ring, and propagates
//	                worker 429 backpressure to clients.
//
// Single-mode endpoints:
//
//	POST /run          {"bench":"telco","vm":"pypy-tiered"} — run (memoized)
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness + cache statistics
//	GET  /vm/phases    per-phase cycles/instrs/IPC of tracked runs
//	GET  /vm/traces    compiled trace/bridge inventory with jitlog labels
//	GET  /vm/warmup    per-tier work-fraction progress (SSE stream)
//	GET  /debug/pprof  Go runtime profiling
//	GET  /debug/reqtrace  flight recorder: recent request span trees
//	                      (JSON; ?format=chrome for a Chrome trace)
//
// Worker adds /drain (POST); frontend serves /run, /metrics, /healthz,
// /ring, /debug/reqtrace. Every mode records request span trees into an
// always-on flight recorder (bounded ring; -reqtrace-trees) and dumps
// it on panic, drain, and store-corruption quarantine (-reqtrace-dump).
// See EXPERIMENTS.md "Cluster serving" for topology and failure
// semantics, "Request tracing & flight recorder" for the span taxonomy,
// and cmd/mtjitload for driving a cluster at saturation.
//
// Usage:
//
//	mtjitd -addr :8077
//	mtjitd -mode worker -addr :8101 -store /var/mtjit/store
//	mtjitd -mode frontend -addr :8100 -peers http://127.0.0.1:8101,http://127.0.0.1:8102
//	curl -s -X POST localhost:8100/run -d '{"bench":"telco","vm":"pypy"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"metajit/internal/cluster"
	"metajit/internal/mtjitd"
	"metajit/internal/reqtrace"
)

func main() {
	mode := flag.String("mode", "single", "single | worker | frontend")
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: NumCPU)")
	maxPending := flag.Int("max-pending", 0, "run requests accepted at once before shedding with 429 (0: 4x workers)")
	liveInterval := flag.Int("live-interval", 0, "live-snapshot publish cadence in machine annotations (0: default; single mode)")
	storeDir := flag.String("store", "", "content-addressed result store directory (worker mode; empty: no persistence)")
	traceDir := flag.String("traces", "", "recorded-trace benchmark directory served in addition to the built-ins")
	name := flag.String("name", "", "worker name for telemetry (worker mode; default: addr)")
	peers := flag.String("peers", "", "comma-separated worker base URLs (frontend mode)")
	replicas := flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0: default)")
	attempts := flag.Int("attempts", 0, "distinct workers tried per request before giving up (0: all)")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound for in-flight requests")
	flightN := flag.Int("reqtrace-trees", 0, "completed span trees kept in the flight-recorder ring (0: default)")
	dumpDir := flag.String("reqtrace-dump", "", "directory for flight-recorder anomaly dumps (empty: stderr)")
	flag.Parse()

	// One flight recorder per process, named for its role; every mode
	// serves it at /debug/reqtrace and dumps it on panic and (workers)
	// drain.
	newRec := func(process string) *reqtrace.Recorder {
		return reqtrace.NewRecorder(reqtrace.Config{
			Process:  process,
			Capacity: *flightN,
			DumpDir:  *dumpDir,
		})
	}

	var handler http.Handler
	var onShutdown func()
	switch *mode {
	case "single":
		srv := mtjitd.New(mtjitd.Config{
			Workers:      *workers,
			MaxPending:   *maxPending,
			LiveInterval: *liveInterval,
			ReqTrace:     newRec("mtjitd"),
		})
		handler = srv.Handler()
	case "worker":
		catalog, err := cluster.NewCatalog(*traceDir)
		if err != nil {
			fatal(err)
		}
		var store *cluster.Store
		if *storeDir != "" {
			if store, err = cluster.OpenStore(*storeDir); err != nil {
				fatal(err)
			}
		}
		wname := *name
		if wname == "" {
			wname = *addr
		}
		w := cluster.NewWorker(cluster.WorkerConfig{
			Name:                  wname,
			Workers:               *workers,
			MaxPending:            *maxPending,
			Store:                 store,
			Catalog:               catalog,
			InstallStackTelemetry: true,
			ReqTrace:              newRec("worker-" + wname),
		})
		handler = w.Handler()
		// Drain before Shutdown: new requests 503 immediately (the
		// frontend fails them over) while Shutdown waits out in-flight
		// ones — the "finish in-flight, stop accepting, hand off" step.
		onShutdown = w.Drain
	case "frontend":
		if *peers == "" {
			fatal(errors.New("frontend mode needs -peers"))
		}
		catalog, err := cluster.NewCatalog(*traceDir)
		if err != nil {
			fatal(err)
		}
		f := cluster.NewFrontend(cluster.FrontendConfig{
			Workers:  strings.Split(*peers, ","),
			Replicas: *replicas,
			Attempts: *attempts,
			Catalog:  catalog,
			ReqTrace: newRec("frontend"),
		})
		handler = f.Handler()
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mtjitd: %s mode, listening on %s\n", *mode, *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mtjitd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mtjitd: shutting down")
	if onShutdown != nil {
		onShutdown()
	}
	shctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mtjitd: shutdown: %v\n", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mtjitd: %v\n", err)
	os.Exit(1)
}
