// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated stack.
//
// Usage:
//
//	experiments -exp table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all
package main

import (
	"flag"
	"fmt"
	"os"

	"metajit/internal/bench"
	"metajit/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (table1..4, fig2..9, all)")
	flag.Parse()

	pypy := bench.PyPySuite()
	clbg := bench.CLBG()

	run := func(name string, f func() string) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Println(f())
	}

	run("table1", func() string { return harness.Table1(pypy) })
	run("table2", func() string { return harness.Table2(clbg) })
	run("fig2", func() string { return harness.Fig2(pypy) })
	run("fig3", func() string { return harness.Fig3("crypto_pyaes", "meteor_contest") })
	run("fig4", func() string { return harness.Fig4(clbg) })
	run("table3", func() string { return harness.Table3(pypy) })
	run("fig5", func() string { return harness.Fig5(pypy) })
	run("fig6", func() string { return harness.Fig6(pypy) })
	run("fig7", func() string { return harness.Fig7(pypy) })
	run("fig8", func() string { return harness.Fig8(pypy) })
	run("fig9", func() string { return harness.Fig9(pypy) })
	run("table4", func() string { return harness.Table4(pypy) })

	switch *exp {
	case "all", "table1", "table2", "table3", "table4",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
