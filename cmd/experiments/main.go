// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated stack.
//
// Cells — distinct (benchmark, VM, options) simulations — are memoized
// and run on a bounded worker pool, so -exp all simulates each cell once
// no matter how many tables share it, and output is identical for any -j.
//
// Usage:
//
//	experiments -exp table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|all [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"metajit/internal/bench"
	"metajit/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (table1..4, fig2..10, all)")
	jobs := flag.Int("j", 0, "max concurrent cell simulations (0 = NumCPU)")
	profileDir := flag.String("profile", "", "also run the PyPy suite under the streaming profiler, writing Chrome traces, folded flamegraphs, and interval series to this directory")
	recordDir := flag.String("record", "", "also record the PyPy suite as workload traces (.mtt) into this directory")
	tracesDir := flag.String("traces", "", "replay every committed trace fixture (*.mtt) in this directory, verifying each against its recorded summary")
	stats := flag.Bool("stats", false, "print memo-cache statistics to stderr after the run")
	flag.Parse()

	pypy := bench.PyPySuite()
	clbg := bench.CLBG()
	runner := harness.NewRunner(*jobs)

	experiments := []struct {
		name string
		f    func() string
	}{
		{"table1", func() string { return harness.Table1(runner, pypy) }},
		{"table2", func() string { return harness.Table2(runner, clbg) }},
		{"fig2", func() string { return harness.Fig2(runner, pypy) }},
		{"fig3", func() string { return harness.Fig3(runner, "crypto_pyaes", "meteor_contest") }},
		{"fig4", func() string { return harness.Fig4(runner, clbg) }},
		{"table3", func() string { return harness.Table3(runner, pypy) }},
		{"fig5", func() string { return harness.Fig5(runner, pypy) }},
		{"fig6", func() string { return harness.Fig6(runner, pypy) }},
		{"fig7", func() string { return harness.Fig7(runner, pypy) }},
		{"fig8", func() string { return harness.Fig8(runner, pypy) }},
		{"fig9", func() string { return harness.Fig9(runner, pypy) }},
		{"fig10", func() string { return harness.Fig10(runner, pypy) }},
		{"table4", func() string { return harness.Table4(runner, pypy) }},
	}

	known := *exp == "all"
	for _, e := range experiments {
		if *exp == e.name {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	// Assemble every selected experiment concurrently: each prefetches
	// its cells onto the shared pool before blocking, so cells unique to
	// late experiments overlap with early ones. Output order is fixed by
	// the experiment list, not by completion order.
	outputs := make([]chan string, len(experiments))
	for i, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ch := make(chan string, 1)
		outputs[i] = ch
		go func(f func() string) { ch <- f() }(e.f)
	}
	for _, ch := range outputs {
		if ch != nil {
			fmt.Println(<-ch)
		}
	}

	// Profiled cells run after the tables so they reuse the warmed pool
	// without perturbing memoized cells (a ProfileDir is part of the cell
	// key). Artifacts are written as a side effect of each simulation;
	// the summary goes to stderr to keep stdout byte-identical to an
	// unprofiled run of the same experiments.
	if *profileDir != "" {
		for _, kind := range []harness.VMKind{harness.VMPyPyJIT, harness.VMPyPyTiered} {
			for i := range pypy {
				p := &pypy[i]
				res, err := runner.Get(p, kind, harness.Options{ProfileDir: *profileDir})
				if err != nil {
					runner.Fail(err)
					continue
				}
				if perr := res.Profile.Err(); perr != nil {
					runner.Fail(fmt.Errorf("%s/%s: profile: %w", p.Name, kind, perr))
					continue
				}
				fmt.Fprintf(os.Stderr, "profiled %s/%s: %d spans, %d artifacts\n",
					p.Name, kind, res.Profile.Stream.Spans, len(res.ProfileFiles))
			}
		}
	}

	// Recorded cells follow the same pattern as profiled ones: they run
	// after the tables on the warmed pool (Record is part of the cell
	// key, so recording never perturbs a memoized unrecorded cell), the
	// trace files land in -record as a side effect, and the summary goes
	// to stderr.
	if *recordDir != "" {
		for _, kind := range []harness.VMKind{harness.VMPyPyJIT, harness.VMPyPyTiered} {
			for i := range pypy {
				p := &pypy[i]
				res, err := runner.Get(p, kind, harness.Options{RecordDir: *recordDir})
				if err != nil {
					runner.Fail(err)
					continue
				}
				fmt.Fprintf(os.Stderr, "recorded %s/%s: %d events -> %s\n",
					p.Name, kind, res.Trace.Summary.Events, res.TraceFile)
			}
		}
	}

	// Fixture replay: load every committed recording and re-drive it
	// under the configuration sealed in its header, demanding the
	// recorded summary bit-exactly. This is the CI-facing face of
	// difftest.CheckReplay — a table of verified fixtures on stdout,
	// non-zero exit if any diverges.
	if *tracesDir != "" {
		progs, err := bench.LoadTraceDir(*tracesDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Recorded workload fixtures (%s)\n", *tracesDir)
		fmt.Printf("%-24s %-12s %10s %12s  %s\n", "fixture", "vm", "events", "instrs", "replay")
		for i := range progs {
			p := &progs[i]
			tr := p.Trace
			ropt := harness.ReplayOptions(tr)
			ropt.Record = true
			res, err := runner.Get(p, harness.VMKind(tr.Header.VM), ropt)
			status := "verified"
			if err != nil {
				runner.Fail(err)
				status = "ERROR"
			} else if s := &res.Trace.Summary; s.Checksum != tr.Summary.Checksum ||
				s.HeapChecksum != tr.Summary.HeapChecksum ||
				s.Instrs != tr.Summary.Instrs || s.CyclesBits != tr.Summary.CyclesBits {
				runner.Fail(fmt.Errorf("%s: replay diverged from recorded summary", p.Name))
				status = "DIVERGED"
			}
			fmt.Printf("%-24s %-12s %10d %12d  %s\n",
				p.Name, tr.Header.VM, tr.Summary.Events, tr.Summary.Instrs, status)
		}
	}

	// Cache statistics go to stderr so stdout (results.txt) stays
	// byte-identical with and without -stats.
	if *stats {
		cs := runner.CacheStats()
		fmt.Fprintf(os.Stderr, "cache: %d requests, %d hits, %d misses, %d evictions (%.1f%% hit rate)\n",
			cs.Requests, cs.Hits, cs.Misses, cs.Evictions, 100*cs.HitRate())
	}

	if errs := runner.Errs(); len(errs) > 0 {
		// Sorted so the summary is stable no matter which goroutine
		// registered a cell first.
		msgs := make([]string, len(errs))
		for i, err := range errs {
			msgs[i] = err.Error()
		}
		sort.Strings(msgs)
		fmt.Fprintf(os.Stderr, "%d failure(s):\n", len(msgs))
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
}
