package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"metajit/internal/bench"
	"metajit/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestTable1Golden renders Table I over a small fixed subset of the PyPy
// suite in process and compares it byte-for-byte against the checked-in
// golden file. The simulator is deterministic, so any drift in cycle
// counts, IPC, MPKI, or formatting shows up as a diff here before it
// silently changes the paper tables. Regenerate with:
//
//	go test ./cmd/experiments -run TestTable1Golden -update
func TestTable1Golden(t *testing.T) {
	want := map[string]bool{"telco": true, "pidigits": true}
	var progs []bench.Program
	for _, p := range bench.PyPySuite() {
		if want[p.Name] {
			progs = append(progs, p)
		}
	}
	if len(progs) != len(want) {
		t.Fatalf("subset selected %d of %d programs; suite renamed?", len(progs), len(want))
	}

	runner := harness.NewRunner(0)
	got := harness.Table1(runner, progs)
	if errs := runner.Errs(); len(errs) > 0 {
		t.Fatalf("runner errors: %v", errs)
	}

	golden := filepath.Join("testdata", "table1_subset.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(wantBytes) {
		t.Errorf("Table I output drifted from golden file:\n--- golden\n%s\n--- got\n%s", wantBytes, got)
	}
}

// TestFig10Golden pins the tiered-warmup figure (Figure 10) on a small
// fixed subset the same way TestTable1Golden pins Table I. Regenerate
// with:
//
//	go test ./cmd/experiments -run TestFig10Golden -update
func TestFig10Golden(t *testing.T) {
	want := map[string]bool{"telco": true, "pidigits": true}
	var progs []bench.Program
	for _, p := range bench.PyPySuite() {
		if want[p.Name] {
			progs = append(progs, p)
		}
	}
	if len(progs) != len(want) {
		t.Fatalf("subset selected %d of %d programs; suite renamed?", len(progs), len(want))
	}

	runner := harness.NewRunner(0)
	got := harness.Fig10(runner, progs)
	if errs := runner.Errs(); len(errs) > 0 {
		t.Fatalf("runner errors: %v", errs)
	}

	golden := filepath.Join("testdata", "fig10_subset.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(wantBytes) {
		t.Errorf("Figure 10 output drifted from golden file:\n--- golden\n%s\n--- got\n%s", wantBytes, got)
	}
}

// TestTieredWarmupRegression is the headline acceptance check for the
// two-tier configuration: on a majority of the sampled suite (and at
// least 3 programs), the tiered VM must reach 25% of the run's guest
// work in no more cycles than the single-tier JIT, with byte-identical
// checksums. It guards against the baseline tier regressing into pure
// overhead.
func TestTieredWarmupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite warmup comparison is slow")
	}
	runner := harness.NewRunner(0)
	opt := harness.Options{SampleInterval: harness.DefaultSampleInterval}
	progs := bench.PyPySuite()
	for i := range progs {
		runner.Prefetch(&progs[i], harness.VMPyPyJIT, opt)
		runner.Prefetch(&progs[i], harness.VMPyPyTiered, opt)
	}
	faster, total := 0, 0
	for i := range progs {
		p := &progs[i]
		rj, errJ := runner.Get(p, harness.VMPyPyJIT, opt)
		rt, errT := runner.Get(p, harness.VMPyPyTiered, opt)
		if errJ != nil || errT != nil {
			t.Fatalf("%s: run errors: %v / %v", p.Name, errJ, errT)
		}
		if rj.Checksum != rt.Checksum {
			t.Errorf("%s: tiered checksum %d != single-tier %d", p.Name, rt.Checksum, rj.Checksum)
		}
		j25 := harness.WarmupCycles(rj, 0.25)
		t25 := harness.WarmupCycles(rt, 0.25)
		total++
		if t25 <= j25 {
			faster++
		} else {
			t.Logf("%s: tiered warmup slower (%.2fM vs %.2fM cycles to 25%% work)",
				p.Name, t25/1e6, j25/1e6)
		}
	}
	if faster < 3 {
		t.Errorf("tiered warmup faster on only %d/%d programs; want >= 3", faster, total)
	}
}

// TestTierShootoutRegression is the headline acceptance check for the
// adaptive tier controller: over the full PyPy suite (Figure 10's
// shootout data), the adaptive configuration must reach 25% of the
// run's guest work in no more cycles than the static tiered
// configuration on all but at most 3 benchmarks, and must never be more
// than 5% slower on any. Fig10Data already cross-checks checksums and
// work totals across the four strategies, so this test only has to
// judge warmup.
func TestTierShootoutRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite shootout comparison is slow")
	}
	// Column indexes into TierRow arrays, in TierStrategies order.
	const tiered, adaptive = 1, 3
	runner := harness.NewRunner(0)
	progs := bench.PyPySuite()
	rows := harness.Fig10Data(runner, progs)
	if errs := runner.Errs(); len(errs) > 0 {
		t.Fatalf("runner errors: %v", errs)
	}
	noWorse, total := 0, 0
	for _, row := range rows {
		if row.Err {
			t.Fatalf("%s: shootout row errored", row.Bench)
		}
		total++
		a, s := row.W25[adaptive], row.W25[tiered]
		if a <= s {
			noWorse++
		} else {
			t.Logf("%s: adaptive warmup slower (%.2fM vs %.2fM cycles to 25%% work)",
				row.Bench, a/1e6, s/1e6)
		}
		if a > s*1.05 {
			t.Errorf("%s: adaptive warmup %.2fM cycles is more than 5%% over static tiered %.2fM",
				row.Bench, a/1e6, s/1e6)
		}
	}
	if want := total - 3; noWorse < want {
		t.Errorf("adaptive warmup no worse than static tiered on only %d/%d programs; want >= %d",
			noWorse, total, want)
	}
}
