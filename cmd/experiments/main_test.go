package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"metajit/internal/bench"
	"metajit/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestTable1Golden renders Table I over a small fixed subset of the PyPy
// suite in process and compares it byte-for-byte against the checked-in
// golden file. The simulator is deterministic, so any drift in cycle
// counts, IPC, MPKI, or formatting shows up as a diff here before it
// silently changes the paper tables. Regenerate with:
//
//	go test ./cmd/experiments -run TestTable1Golden -update
func TestTable1Golden(t *testing.T) {
	want := map[string]bool{"telco": true, "pidigits": true}
	var progs []bench.Program
	for _, p := range bench.PyPySuite() {
		if want[p.Name] {
			progs = append(progs, p)
		}
	}
	if len(progs) != len(want) {
		t.Fatalf("subset selected %d of %d programs; suite renamed?", len(progs), len(want))
	}

	runner := harness.NewRunner(0)
	got := harness.Table1(runner, progs)
	if errs := runner.Errs(); len(errs) > 0 {
		t.Fatalf("runner errors: %v", errs)
	}

	golden := filepath.Join("testdata", "table1_subset.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(wantBytes) {
		t.Errorf("Table I output drifted from golden file:\n--- golden\n%s\n--- got\n%s", wantBytes, got)
	}
}
