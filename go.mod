module metajit

go 1.22
