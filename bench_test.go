// Benchmark entry points: one testing.B target per paper table/figure,
// plus ablation benches for the design choices DESIGN.md calls out.
// Reported custom metrics are simulated cycles and instructions (the
// quantities the paper's tables hold); wall time measures the simulator.
package main

import (
	"testing"

	"metajit/internal/bench"
	"metajit/internal/cpu"
	"metajit/internal/harness"
	"metajit/internal/mtjit"
)

func reportResult(b *testing.B, r *harness.Result) {
	// Metrics describe one benchmark execution (the last), independent of
	// how many iterations the bench framework chose.
	b.ReportMetric(r.Cycles, "simcycles")
	b.ReportMetric(float64(r.Instrs), "siminstrs")
	b.ReportMetric(r.Total.IPC(), "IPC")
	b.ReportMetric(r.Total.MPKI(), "MPKI")
}

// run executes one cell, failing the bench on configuration errors (the
// harness returns errors instead of panicking).
func run(b *testing.B, p *bench.Program, kind harness.VMKind, opt harness.Options) *harness.Result {
	b.Helper()
	r, err := harness.Run(p, kind, opt)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchOne(b *testing.B, name string, kind harness.VMKind, opt harness.Options) {
	p := bench.ByName(name)
	if p == nil {
		b.Fatalf("no benchmark %q", name)
	}
	var last *harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = run(b, p, kind, opt)
	}
	b.StopTimer()
	reportResult(b, last)
}

// BenchmarkExperimentsAll measures one full memoized regeneration of the
// evaluation's PyPy-suite tables and figures on the parallel Runner — a
// fresh Runner per iteration, so each iteration simulates every distinct
// cell exactly once on a NumCPU-wide pool.
func BenchmarkExperimentsAll(b *testing.B) {
	pypy := bench.PyPySuite()
	clbg := bench.CLBG()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		harness.Table1(r, pypy)
		harness.Table2(r, clbg)
		harness.Fig2(r, pypy)
		harness.Fig3(r, "crypto_pyaes", "meteor_contest")
		harness.Fig4(r, clbg)
		harness.Table3(r, pypy)
		harness.Fig5(r, pypy)
		harness.Fig6(r, pypy)
		harness.Fig7(r, pypy)
		harness.Fig8(r, pypy)
		harness.Fig9(r, pypy)
		harness.Table4(r, pypy)
		if errs := r.Errs(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		b.ReportMetric(float64(r.Simulations()), "cells")
	}
}

// BenchmarkTable1 regenerates Table I's three columns on the PyPy suite.
func BenchmarkTable1(b *testing.B) {
	for _, kind := range []harness.VMKind{harness.VMCPython, harness.VMPyPyNoJIT, harness.VMPyPyJIT} {
		for _, p := range bench.PyPySuite() {
			b.Run(string(kind)+"/"+p.Name, func(b *testing.B) {
				benchOne(b, p.Name, kind, harness.Options{})
			})
		}
	}
}

// BenchmarkTable2 regenerates Table II's CLBG rows (C, CPython, PyPy,
// Racket, Pycket).
func BenchmarkTable2(b *testing.B) {
	for _, p := range bench.CLBG() {
		for _, kind := range []harness.VMKind{harness.VMC, harness.VMCPython, harness.VMPyPyJIT, harness.VMRacket, harness.VMPycket} {
			if kind == harness.VMC && !p.Static {
				continue
			}
			if (kind == harness.VMRacket || kind == harness.VMPycket) && p.SkSource == "" {
				continue
			}
			b.Run(p.Name+"/"+string(kind), func(b *testing.B) {
				benchOne(b, p.Name, kind, harness.Options{})
			})
		}
	}
}

// BenchmarkFig2Phases runs the JIT configuration and reports the phase mix
// (Figure 2's data) for a representative subset.
func BenchmarkFig2Phases(b *testing.B) {
	for _, name := range []string{"richards", "pidigits", "binarytrees", "spectral_norm", "telco"} {
		b.Run(name, func(b *testing.B) {
			p := bench.ByName(name)
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				last = run(b, p, harness.VMPyPyJIT, harness.Options{})
			}
			reportResult(b, last)
			b.ReportMetric(100*last.PhaseFraction(2), "jit%")
			b.ReportMetric(100*last.PhaseFraction(3), "jitcall%")
			b.ReportMetric(100*last.PhaseFraction(4), "gc%")
		})
	}
}

// BenchmarkFig5Warmup measures the warmup study's sampled run. A fresh
// Runner per iteration keeps the three underlying cells unmemoized so the
// simulator, not the cache, is what's timed.
func BenchmarkFig5Warmup(b *testing.B) {
	p := bench.ByName("crypto_pyaes")
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig5Data(harness.NewRunner(0), p, harness.DefaultSampleInterval); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6IRStats exercises the JIT-IR-level statistics pipeline.
func BenchmarkFig6IRStats(b *testing.B) {
	p := bench.ByName("richards")
	for i := 0; i < b.N; i++ {
		r := run(b, p, harness.VMPyPyJIT, harness.Options{})
		if r.Log == nil || r.Log.TotalIRNodes() == 0 {
			b.Fatal("no IR stats")
		}
		r.Log.CategoryBreakdown()
		r.Log.HotNodeFraction(0.95)
		r.Log.DynamicOpcodeHistogram()
	}
}

// BenchmarkTable3AOT exercises Table III's AOT attribution on pidigits.
func BenchmarkTable3AOT(b *testing.B) {
	p := bench.ByName("pidigits")
	for i := 0; i < b.N; i++ {
		r := run(b, p, harness.VMPyPyJIT, harness.Options{})
		if len(r.AOT.CyclesByFunc) == 0 {
			b.Fatal("no AOT attribution")
		}
	}
}

// BenchmarkTable4PerPhase runs the per-phase microarchitecture study input.
func BenchmarkTable4PerPhase(b *testing.B) {
	p := bench.ByName("richards")
	for i := 0; i < b.N; i++ {
		r := run(b, p, harness.VMPyPyJIT, harness.Options{})
		_ = r.Phases
	}
}

// ---- ablations (DESIGN.md section 5) ----

// BenchmarkAblationEscapeAnalysis compares the float benchmark with and
// without allocation removal: the paper credits escape analysis for the
// drop in GC pressure once the JIT warms up.
func BenchmarkAblationEscapeAnalysis(b *testing.B) {
	withOut := mtjit.AllOpts()
	withOut.Virtuals = false
	for _, c := range []struct {
		name string
		opts mtjit.OptConfig
	}{{"on", mtjit.AllOpts()}, {"off", withOut}} {
		b.Run(c.name, func(b *testing.B) {
			o := c.opts
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				last = run(b, bench.ByName("float"), harness.VMPyPyJIT,
					harness.Options{Opts: &o})
			}
			reportResult(b, last)
			b.ReportMetric(float64(last.GC.AllocObjects), "allocs")
		})
	}
}

// BenchmarkAblationOptimizer toggles each optimizer pass on richards.
func BenchmarkAblationOptimizer(b *testing.B) {
	configs := []struct {
		name string
		opts mtjit.OptConfig
	}{
		{"all", mtjit.AllOpts()},
		{"none", mtjit.NoOpts()},
		{"fold-only", mtjit.OptConfig{Fold: true}},
		{"cse-only", mtjit.OptConfig{CSE: true}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			o := c.opts
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				last = run(b, bench.ByName("richards"), harness.VMPyPyJIT,
					harness.Options{Opts: &o})
			}
			reportResult(b, last)
		})
	}
}

// BenchmarkAblationBridges compares bridge compilation on vs off: without
// bridges every hot guard failure pays a full deoptimization round trip.
func BenchmarkAblationBridges(b *testing.B) {
	for _, c := range []struct {
		name      string
		threshold int
	}{
		{"on", 0},        // engine default
		{"off", 1 << 30}, // failures never promote to bridges
	} {
		b.Run(c.name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				last = run(b, bench.ByName("richards"), harness.VMPyPyJIT,
					harness.Options{BridgeThreshold: c.threshold})
			}
			reportResult(b, last)
			b.ReportMetric(float64(last.Events.Deopts), "deopts")
			b.ReportMetric(float64(last.Events.BridgeEnters), "bridge-enters")
		})
	}
}

// BenchmarkAblationThreshold sweeps the JIT hot-loop threshold (warmup
// break-even movement).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{13, 57, 223, 997} {
		b.Run(thName(th), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				last = run(b, bench.ByName("crypto_pyaes"), harness.VMPyPyJIT,
					harness.Options{Threshold: th})
			}
			reportResult(b, last)
		})
	}
}

func thName(th int) string {
	switch th {
	case 13:
		return "eager-13"
	case 57:
		return "default-57"
	case 223:
		return "lazy-223"
	}
	return "very-lazy-997"
}

// BenchmarkAblationBranchPredictor compares the dynamic predictor against
// static prediction (MPKI sensitivity of the interpreter vs JIT code).
func BenchmarkAblationBranchPredictor(b *testing.B) {
	for _, c := range []struct {
		name   string
		params cpu.Params
	}{
		{"gshare", cpu.DefaultParams()},
		{"static", cpu.StaticPredictorParams()},
	} {
		for _, vm := range []harness.VMKind{harness.VMCPython, harness.VMPyPyJIT} {
			b.Run(c.name+"/"+string(vm), func(b *testing.B) {
				p := c.params
				var last *harness.Result
				for i := 0; i < b.N; i++ {
					last = run(b, bench.ByName("richards"), vm,
						harness.Options{Params: &p})
				}
				reportResult(b, last)
			})
		}
	}
}

// BenchmarkVMSubstrate measures raw simulator throughput (CPU model +
// heap) independent of any experiment.
func BenchmarkVMSubstrate(b *testing.B) {
	p := bench.ByName("telco")
	for i := 0; i < b.N; i++ {
		run(b, p, harness.VMCPython, harness.Options{})
	}
}
