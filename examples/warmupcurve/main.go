// Warmupcurve: reproduce one benchmark's Figure 5 warmup study — the
// bytecode execution rate of the meta-tracing VM normalized to the
// reference interpreter, with JIT break-even points.
package main

import (
	"fmt"
	"strings"

	"metajit/internal/bench"
	"metajit/internal/harness"
)

func main() {
	p := bench.ByName("crypto_pyaes")
	w, err := harness.Fig5Data(harness.NewRunner(0), p, 150_000)
	if err != nil {
		panic(err)
	}

	fmt.Printf("warmup of %s (rate vs reference interpreter; 1.0 = parity)\n\n", w.Bench)
	peak := 0.0
	for _, r := range w.Rate {
		if r > peak {
			peak = r
		}
	}
	for i, r := range w.Rate {
		bar := int(40 * r / peak)
		mark := ""
		if w.BreakEvenCPy != 0 && i > 0 && w.Instrs[i-1] < w.BreakEvenCPy && w.Instrs[i] >= w.BreakEvenCPy {
			mark = "  <- break-even vs reference interp"
		}
		fmt.Printf("%7.1fM instrs %6.2fx |%s%s\n",
			float64(w.Instrs[i])/1e6, r, strings.Repeat("#", bar), mark)
	}
	fmt.Printf("\nfinal speedup:         %.1fx\n", w.FinalSpeedup)
	fmt.Printf("break-even vs no-JIT:  %s instrs\n", fmtI(w.BreakEvenNoJIT))
	fmt.Printf("break-even vs refinterp: %s instrs\n", fmtI(w.BreakEvenCPy))
	fmt.Println("\nnote the paper's observation: break-even against the framework's")
	fmt.Println("own interpreter comes very early; catching the faster reference")
	fmt.Println("interpreter takes longer.")
}

func fmtI(v uint64) string {
	if v == 0 {
		return "never (in window)"
	}
	return fmt.Sprintf("%.1fM", float64(v)/1e6)
}
