// Phasebreakdown: reproduce the heart of the paper's Figure 2 on three
// very different workloads — a numeric kernel (JIT-dominated), a
// bigint-heavy program (JIT-call-dominated), and an allocation storm
// (GC-heavy) — showing that no single phase dominates everywhere.
package main

import (
	"fmt"

	"metajit/internal/bench"
	"metajit/internal/core"
	"metajit/internal/harness"
)

func main() {
	names := []string{"spectral_norm", "pidigits", "binarytrees", "richards"}
	// The Runner simulates the four cells concurrently (bounded at
	// NumCPU) while the rows below print in listed order.
	runner := harness.NewRunner(0)
	for _, name := range names {
		runner.Prefetch(bench.ByName(name), harness.VMPyPyJIT, harness.Options{})
	}
	fmt.Printf("%-16s", "benchmark")
	for _, ph := range core.AllPhases() {
		fmt.Printf(" %9s", ph)
	}
	fmt.Println()
	for _, name := range names {
		r, err := runner.Get(bench.ByName(name), harness.VMPyPyJIT, harness.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s", name)
		for _, ph := range core.AllPhases() {
			fmt.Printf("    %5.1f%%", 100*r.PhaseFraction(ph))
		}
		fmt.Println()
	}
	fmt.Println("\nreading: spectral_norm lives in jit, pidigits in jit_call")
	fmt.Println("(bigint residual calls), binarytrees stresses gc — the paper's")
	fmt.Println("point that every phase matters for some workload.")
}
