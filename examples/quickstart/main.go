// Quickstart: build a simulated meta-tracing VM, run a Python-guest
// program on it, and inspect cross-layer measurements — the one-minute
// tour of the library.
package main

import (
	"fmt"

	"metajit/internal/core"
	"metajit/internal/cpu"
	"metajit/internal/jitlog"
	"metajit/internal/pintool"
	"metajit/internal/pylang"
)

const program = `
def fib_sum(n):
    a = 0
    b = 1
    total = 0
    for i in range(n):
        t = (a + b) % 1000000007
        a = b
        b = t
        total = (total + a) % 1000000007
    return total

def main():
    return fib_sum(200000)
`

func main() {
	// A simulated Haswell-class core.
	mach := cpu.NewDefault()

	// The "PinTool": intercepts cross-layer annotations at the machine
	// level and reconstructs framework phases.
	pintool.NewPhaseTracker(mach)
	meter := pintool.NewWorkMeter(mach, 0)

	// A framework VM (RPython analog) with the meta-tracing JIT on.
	vm := pylang.New(mach, pylang.Config{JIT: true})
	log := jitlog.Attach(vm.Eng)

	if err := vm.LoadModule("quickstart", program); err != nil {
		panic(err)
	}
	result := vm.RunFunction("main")

	fmt.Printf("main() = %s\n", vm.Format(result))
	fmt.Printf("guest bytecodes executed: %d\n", meter.Bytecodes)
	fmt.Printf("simulated instructions:   %d\n", mach.TotalInstrs())
	fmt.Printf("simulated cycles:         %.0f (IPC %.2f)\n",
		mach.TotalCycles(), mach.Total().IPC())

	fmt.Println("\nwhere did the time go?")
	for _, ph := range core.AllPhases() {
		c := mach.PhaseCounters(ph)
		if c.Instrs == 0 {
			continue
		}
		fmt.Printf("  %-10s %6.2f%% of instructions (IPC %.2f)\n",
			ph, 100*float64(c.Instrs)/float64(mach.TotalInstrs()), c.IPC())
	}

	fmt.Printf("\nthe JIT compiled %d trace(s):\n", len(log.Traces))
	for _, t := range log.Traces {
		kind := "loop"
		if t.Bridge {
			kind = "bridge"
		}
		fmt.Printf("  %s %d: %d IR ops, executed %d times\n",
			kind, t.ID, t.NewOpsCount(), t.ExecCount)
	}
}
