// Schemeloops: the two-language story — run the same algorithm as a
// Scheme-guest program (tail recursion compiled to loops, as Pycket does)
// and as a Python-guest program, on the same meta-tracing framework, and
// compare what the JIT sees.
package main

import (
	"fmt"

	"metajit/internal/cpu"
	"metajit/internal/jitlog"
	"metajit/internal/pintool"
	"metajit/internal/pylang"
	"metajit/internal/sklang"
)

const schemeSrc = `
(define (sum-squares i n acc)
  (if (>= i n)
      acc
      (sum-squares (+ i 1) n (+ acc (* i i)))))

(define (main) (sum-squares 0 100000 0))
`

const pythonSrc = `
def main():
    acc = 0
    for i in range(100000):
        acc += i * i
    return acc
`

func run(label string, load func(vm *pylang.VM) error, scheme bool) {
	mach := cpu.NewDefault()
	pintool.NewPhaseTracker(mach)
	vm := pylang.New(mach, pylang.Config{JIT: true})
	vm.UnicodeStrings = !scheme
	log := jitlog.Attach(vm.Eng)
	if err := load(vm); err != nil {
		panic(err)
	}
	res := vm.RunFunction("main")
	fmt.Printf("%-8s main() = %-14s %8.2fM instrs, %d traces",
		label, vm.Format(res), float64(mach.TotalInstrs())/1e6, len(log.Traces))
	if len(log.Traces) > 0 {
		fmt.Printf(" (first trace: %d IR ops)", log.Traces[0].NewOpsCount())
	}
	fmt.Println()
}

func main() {
	run("scheme", func(vm *pylang.VM) error { return sklang.Load(vm, schemeSrc) }, true)
	run("python", func(vm *pylang.VM) error { return vm.LoadModule("ex", pythonSrc) }, false)
	fmt.Println("\nboth guests drive the same meta-tracing engine; the Scheme")
	fmt.Println("front end exposes loops as tail self-calls (Pycket-style merge")
	fmt.Println("points at function entry), the Python front end as bytecode")
	fmt.Println("loop headers — the traces converge to near-identical kernels.")
}
