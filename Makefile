GO ?= go

.PHONY: all build test check vet fmt race bench experiments serve fuzz traces perf-baseline perf-compare

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis, formatting, and the
# race-enabled tests for the packages with real concurrency (the
# parallel experiment runner and the pintool observers).
check: vet fmt race

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race instrumentation slows the simulator ~10x; give slow single-core
# machines headroom beyond go test's default 10m panic. The JIT engine
# and differential oracle are single-threaded but ride along under
# -short to catch races introduced by future parallelism.
race:
	$(GO) test -race -timeout 30m ./internal/harness/... ./internal/pintool/... ./internal/telemetry/... ./internal/mtjitd/... ./internal/profile/... ./internal/trace/... ./internal/cluster/... ./internal/reqtrace/...
	$(GO) test -race -short -timeout 30m ./internal/mtjit/... ./internal/difftest/...

# -run '^$' keeps `go test` from running the whole unit-test suite
# before the benchmarks start.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/cpu

# Host-performance baseline (see internal/hostbench and EXPERIMENTS.md):
# perf-baseline re-records the committed BENCH_host.json; perf-compare
# measures a fresh run and fails if any entry regresses beyond the
# thresholds relative to the committed baseline.
perf-baseline:
	$(GO) run ./cmd/hostbench -out BENCH_host.json

perf-compare:
	$(GO) run ./cmd/hostbench -baseline BENCH_host.json

experiments:
	$(GO) run ./cmd/experiments -exp all

# serve starts the mtjitd introspection daemon on :8077 (see README).
serve:
	$(GO) run ./cmd/mtjitd -addr :8077

# Differential fuzzing: each target generates guest programs from raw
# bytes and cross-checks them under the full VM configuration matrix
# (see internal/difftest). Divergences are minimized into
# internal/difftest/testdata/fuzz and replayed by plain `go test`.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz=FuzzPylangDifferential -fuzztime=$(FUZZTIME) ./internal/difftest
	$(GO) test -fuzz=FuzzSklangDifferential -fuzztime=$(FUZZTIME) ./internal/difftest
	$(GO) test -fuzz=FuzzTieredPromotion -fuzztime=$(FUZZTIME) ./internal/difftest
	$(GO) test -fuzz=FuzzAmalgamatedTiering -fuzztime=$(FUZZTIME) ./internal/difftest
	$(GO) test -fuzz=FuzzAnnotStream -fuzztime=$(FUZZTIME) ./internal/profile
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=$(FUZZTIME) ./internal/trace

# traces re-records the committed workload fixtures under
# internal/bench/testdata/traces (needed when instruction accounting or
# the trace wire format changes; bump trace.FormatVersion for the
# latter) and refreshes the tracefmt golden that renders one of them.
traces:
	$(GO) test ./internal/bench -run TestTraceFixtures -update
	$(GO) test ./cmd/tracefmt -update
